// Run-level streaming event log (`eca.events.v1`).
//
// An EventLog owns a bounded, lock-free buffer of fixed-size EventRecords.
// record() is two relaxed atomics and a struct copy — allocation-free, safe
// on the decide/Newton hot path — and drops (and counts) once the buffer is
// full, mirroring TraceSession. flush() serializes the buffer as JSONL: a
// header line carrying the schema, then one JSON object per event in claim
// order, each stamped with its sequence number.
//
// Determinism contract (the same one the metrics registry documents):
// every value placed in an event payload must itself be deterministic —
// slot indices, cost splits, iteration counts, work volumes — never wall
// clocks, thread ids, or resolved worker counts. The instrumentation in
// sim/algo records events only from the thread driving the slot sequence
// (the simulator emits slot events post-merge in ascending slot order, and
// the only decide-path emitter, OnlineApprox, always runs its slots
// serially), so the serialized stream is bit-identical for every
// ECA_SLOT_THREADS / ECA_BASELINE_THREADS / ECA_LP_THREADS value — pinned
// by tests/sim/events_determinism_test.cc under the tsan-smoke label. The
// runner-level repetition fan-out (ECA_THREADS) interleaves whole runs'
// events nondeterministically; capture streams for diffing with
// ECA_THREADS=1.
//
// The process-global log is configured from ECA_EVENTS=<path> on first use
// (ECA_EVENTS_CAP bounds the buffer). Both knobs fail fast with exit
// status 2 on invalid values — the same contract as ECA_METRICS: an
// observability typo must not silently run a different configuration.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"

namespace eca::obs {

inline constexpr const char* kEventsSchema = "eca.events.v1";

enum class EventKind : std::uint8_t {
  kExperimentBegin,  // label="", a=repetitions, b=roster size
  kRepBegin,         // a=rep, x=offline-opt cost (the ratio denominator)
  kRunBegin,         // label=algorithm, a=clouds, b=users, c=slots
  kWorkers,          // label=scope, a=work, b=min_work, c=eligible (0/1)
  kSlot,             // a=slot, x/y/z/w = weighted op/sq/rc/mg cost split
  kSolve,            // a=slot, b=newton iters, c=mu steps, d=flag bits
  kRunEnd,    // label=algorithm, a=slots, b=iters, c=warm_fb, d=active_fb,
              // x=total weighted cost
  kResult,    // label=algorithm, a=rep, x=cost, y=competitive ratio
  kRepEnd,           // a=rep
  kExperimentEnd,    // a=simulations accumulated
};
const char* to_string(EventKind kind);

// Bit flags of the kSolve `d` payload.
inline constexpr std::int64_t kSolveWarmStarted = 1;
inline constexpr std::int64_t kSolveWarmFallback = 2;
inline constexpr std::int64_t kSolveActiveSet = 4;
inline constexpr std::int64_t kSolveActiveFallback = 8;

// Fixed-size POD payload: a short copied label plus kind-specific numeric
// fields (see EventKind). Copying the label keeps record() allocation-free
// without a lifetime contract on the caller's string.
struct EventRecord {
  EventKind kind = EventKind::kRunBegin;
  char label[40] = {};
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double w = 0.0;

  void set_label(std::string_view text) {
    const std::size_t n = text.size() < sizeof(label) - 1
                              ? text.size()
                              : sizeof(label) - 1;
    std::memcpy(label, text.data(), n);
    label[n] = '\0';
  }
};

struct EventLogOptions {
  std::string path;  // output file; empty => flush() only via flush_to()
  std::size_t capacity = 1 << 16;  // max buffered events
};

class EventLog {
 public:
  explicit EventLog(EventLogOptions options);
  ~EventLog();  // flushes to options.path if set and not yet flushed

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Records one event. Lock-free, allocation-free; drops (and counts) once
  // the buffer is full.
  void record(const EventRecord& event);

  // Events recorded so far (capped at capacity) / dropped for lack of room.
  [[nodiscard]] std::size_t recorded() const;
  [[nodiscard]] std::size_t dropped() const;

  // Serializes the buffered events as `eca.events.v1` JSONL. flush() opens
  // options.path ("" => no-op, returns false). Flush at quiescent points;
  // events recorded concurrently may or may not be included.
  bool flush();
  void flush_to(std::ostream& os) const;

 private:
  EventLogOptions options_;
  std::vector<EventRecord> buffer_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> dropped_{0};
  bool flushed_ = false;
};

// Parses ECA_EVENTS / ECA_EVENTS_CAP into `options`, failing fast with
// exit(2) on any set-but-invalid value (empty path, unwritable path,
// non-numeric or < 1 cap). Returns false when ECA_EVENTS is unset. The
// global_events() initialization calls this once on first use; exposed so
// death tests can exercise the validation directly.
bool events_options_from_env(EventLogOptions& options);

// The env-configured (ECA_EVENTS=<path>) process-global log; nullptr when
// event streaming is disabled. Flushed by a static destructor at exit.
EventLog* global_events();
// Replaces the global log (tests, embedders). The registry takes ownership;
// the previous log is flushed and destroyed.
EventLog* install_global_events(EventLogOptions options);
void drop_global_events();

// --- Emit helpers ---------------------------------------------------------
// All are single-record builders that no-op on a null log and never
// allocate; payloads carry only deterministic values (see file comment).

inline void emit_experiment_begin(EventLog* log, int repetitions,
                                  std::size_t num_algorithms) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kExperimentBegin;
  ev.a = repetitions;
  ev.b = static_cast<std::int64_t>(num_algorithms);
  log->record(ev);
}

inline void emit_rep_begin(EventLog* log, std::size_t rep,
                           double offline_cost) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kRepBegin;
  ev.a = static_cast<std::int64_t>(rep);
  ev.x = offline_cost;
  log->record(ev);
}

inline void emit_run_begin(EventLog* log, std::string_view algorithm,
                           std::size_t clouds, std::size_t users,
                           std::size_t slots) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kRunBegin;
  ev.set_label(algorithm);
  ev.a = static_cast<std::int64_t>(clouds);
  ev.b = static_cast<std::int64_t>(users);
  ev.c = static_cast<std::int64_t>(slots);
  log->record(ev);
}

// Worker-engagement record. Deliberately carries the *policy inputs* (work
// volume, floor, separability-based eligibility) and not the resolved
// worker count — the resolved count depends on ECA_*_THREADS and the host's
// core count, which would break the stream's bit-identity contract. The
// resolved counts live in metrics/trace, which are outside that contract.
inline void emit_workers(EventLog* log, std::string_view scope,
                         std::size_t work, std::size_t min_work,
                         bool eligible) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kWorkers;
  ev.set_label(scope);
  ev.a = static_cast<std::int64_t>(work);
  ev.b = static_cast<std::int64_t>(min_work);
  ev.c = eligible ? 1 : 0;
  log->record(ev);
}

inline void emit_slot(EventLog* log, std::size_t slot, double cost_operation,
                      double cost_service_quality, double cost_reconfiguration,
                      double cost_migration) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kSlot;
  ev.a = static_cast<std::int64_t>(slot);
  ev.x = cost_operation;
  ev.y = cost_service_quality;
  ev.z = cost_reconfiguration;
  ev.w = cost_migration;
  log->record(ev);
}

inline void emit_solve(EventLog* log, std::size_t slot,
                       const SolveTelemetry& solve) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kSolve;
  ev.a = static_cast<std::int64_t>(slot);
  ev.b = solve.newton_iterations;
  ev.c = solve.mu_steps;
  ev.d = (solve.warm_started ? kSolveWarmStarted : 0) |
         (solve.warm_fallback ? kSolveWarmFallback : 0) |
         (solve.active_set ? kSolveActiveSet : 0) |
         (solve.active_fallback ? kSolveActiveFallback : 0);
  log->record(ev);
}

// Solver-health summary of one finished run (RunTelemetry aggregates only —
// no wall clocks, which would break determinism).
inline void emit_run_end(EventLog* log, const RunTelemetry& run) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kRunEnd;
  ev.set_label(run.algorithm);
  ev.a = static_cast<std::int64_t>(run.slots.size());
  ev.b = run.total_newton_iterations();
  ev.c = static_cast<std::int64_t>(run.warm_fallback_slots());
  ev.d = static_cast<std::int64_t>(run.active_fallback_slots());
  ev.x = run.total_cost;
  log->record(ev);
}

inline void emit_result(EventLog* log, std::string_view algorithm,
                        std::size_t rep, double cost, double ratio) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kResult;
  ev.set_label(algorithm);
  ev.a = static_cast<std::int64_t>(rep);
  ev.x = cost;
  ev.y = ratio;
  log->record(ev);
}

inline void emit_rep_end(EventLog* log, std::size_t rep) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kRepEnd;
  ev.a = static_cast<std::int64_t>(rep);
  log->record(ev);
}

inline void emit_experiment_end(EventLog* log, std::size_t simulations) {
  if (log == nullptr) return;
  EventRecord ev;
  ev.kind = EventKind::kExperimentEnd;
  ev.a = static_cast<std::int64_t>(simulations);
  log->record(ev);
}

}  // namespace eca::obs
