#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eca::obs {
namespace internal {

namespace {

// ECA_METRICS=on|off (plus the usual boolean spellings); default on. A
// value that parses as neither is a fail-fast error: observability knobs
// follow the same contract as the threading knobs (a typo must not
// silently flip the configuration).
bool metrics_enabled_from_env() {
  const char* value = std::getenv("ECA_METRICS");
  if (value == nullptr) return true;
  if (std::strcmp(value, "on") == 0 || std::strcmp(value, "1") == 0 ||
      std::strcmp(value, "true") == 0 || std::strcmp(value, "yes") == 0) {
    return true;
  }
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
      std::strcmp(value, "false") == 0 || std::strcmp(value, "no") == 0) {
    return false;
  }
  std::fprintf(stderr,
               "error: ECA_METRICS='%s' is invalid (must be on|off|1|0|"
               "true|false|yes|no; unset it for the default)\n",
               value);
  std::exit(2);
}

}  // namespace

std::atomic<bool> g_metrics_enabled{metrics_enabled_from_env()};

namespace {
std::atomic<std::size_t> g_next_ordinal{0};
}  // namespace

std::size_t thread_ordinal() {
  thread_local const std::size_t ordinal =
      g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace internal

std::size_t threads_seen() {
  return internal::g_next_ordinal.load(std::memory_order_relaxed);
}

bool set_metrics_enabled(bool enabled) {
  return internal::g_metrics_enabled.exchange(enabled,
                                              std::memory_order_relaxed);
}

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const CounterCell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (CounterCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

double DoubleCounter::total() const {
  double sum = 0.0;
  for (const DoubleCell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void DoubleCounter::reset() {
  for (DoubleCell& cell : cells_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      n += bucket.load(std::memory_order_relaxed);
    }
  }
  return n;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t s = 0;
  for (const Shard& shard : shards_) {
    s += shard.sum.load(std::memory_order_relaxed);
  }
  return s;
}

std::array<std::uint64_t, kHistogramBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kHistogramBuckets> merged{};
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

namespace {

template <typename T>
T* find_by_name(const std::vector<std::unique_ptr<T>>& metrics,
                std::string_view name) {
  for (const auto& metric : metrics) {
    if (metric->name() == name) return metric.get();
  }
  return nullptr;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* existing = find_by_name(counters_, name)) return *existing;
  counters_.emplace_back(new Counter(std::string(name)));
  return *counters_.back();
}

DoubleCounter& MetricsRegistry::double_counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (DoubleCounter* existing = find_by_name(double_counters_, name)) {
    return *existing;
  }
  double_counters_.emplace_back(new DoubleCounter(std::string(name)));
  return *double_counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* existing = find_by_name(gauges_, name)) return *existing;
  gauges_.emplace_back(new Gauge(std::string(name)));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* existing = find_by_name(histograms_, name)) return *existing;
  histograms_.emplace_back(new Histogram(std::string(name)));
  return *histograms_.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) snap.counters.emplace_back(c->name(), c->total());
  snap.double_counters.reserve(double_counters_.size());
  for (const auto& c : double_counters_) {
    snap.double_counters.emplace_back(c->name(), c->total());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) snap.gauges.emplace_back(g->name(), g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h->name();
    hs.count = h->count();
    hs.sum = h->sum();
    hs.buckets = h->buckets();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& c : double_counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double MetricsSnapshot::double_counter(std::string_view name,
                                       double fallback) const {
  for (const auto& [n, v] : double_counters) {
    if (n == name) return v;
  }
  return fallback;
}

}  // namespace eca::obs
