#include "obs/events.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

namespace eca::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kExperimentBegin:
      return "experiment_begin";
    case EventKind::kRepBegin:
      return "rep_begin";
    case EventKind::kRunBegin:
      return "run_begin";
    case EventKind::kWorkers:
      return "workers";
    case EventKind::kSlot:
      return "slot";
    case EventKind::kSolve:
      return "solve";
    case EventKind::kRunEnd:
      return "run_end";
    case EventKind::kResult:
      return "result";
    case EventKind::kRepEnd:
      return "rep_end";
    case EventKind::kExperimentEnd:
      return "experiment_end";
  }
  return "unknown";
}

EventLog::EventLog(EventLogOptions options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  buffer_.resize(options_.capacity);
}

EventLog::~EventLog() {
  if (!options_.path.empty() && !flushed_) flush();
}

void EventLog::record(const EventRecord& event) {
  const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= buffer_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer_[idx] = event;
}

std::size_t EventLog::recorded() const {
  const std::size_t claimed = cursor_.load(std::memory_order_relaxed);
  return claimed < buffer_.size() ? claimed : buffer_.size();
}

std::size_t EventLog::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

namespace {

// Labels are short internal identifiers, but the writer must never emit
// invalid JSON for an unusual one.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_event(std::ostream& os, std::size_t seq, const EventRecord& ev) {
  os << "{\"seq\":" << seq << ",\"kind\":\"" << to_string(ev.kind) << '"';
  const auto label = [&os, &ev](const char* field) {
    os << ",\"" << field << "\":\"";
    write_escaped(os, ev.label);
    os << '"';
  };
  const auto num = [&os](const char* field, std::int64_t v) {
    os << ",\"" << field << "\":" << v;
  };
  const auto real = [&os](const char* field, double v) {
    os << ",\"" << field << "\":";
    write_double(os, v);
  };
  const auto flag = [&os](const char* field, bool v) {
    os << ",\"" << field << "\":" << (v ? "true" : "false");
  };
  switch (ev.kind) {
    case EventKind::kExperimentBegin:
      num("repetitions", ev.a);
      num("algorithms", ev.b);
      break;
    case EventKind::kRepBegin:
      num("rep", ev.a);
      real("offline_cost", ev.x);
      break;
    case EventKind::kRunBegin:
      label("algorithm");
      num("clouds", ev.a);
      num("users", ev.b);
      num("slots", ev.c);
      break;
    case EventKind::kWorkers:
      label("scope");
      num("work", ev.a);
      num("min_work", ev.b);
      flag("eligible", ev.c != 0);
      break;
    case EventKind::kSlot:
      num("slot", ev.a);
      real("cost_operation", ev.x);
      real("cost_service_quality", ev.y);
      real("cost_reconfiguration", ev.z);
      real("cost_migration", ev.w);
      break;
    case EventKind::kSolve:
      num("slot", ev.a);
      num("newton_iterations", ev.b);
      num("mu_steps", ev.c);
      flag("warm_started", (ev.d & kSolveWarmStarted) != 0);
      flag("warm_fallback", (ev.d & kSolveWarmFallback) != 0);
      flag("active_set", (ev.d & kSolveActiveSet) != 0);
      flag("active_fallback", (ev.d & kSolveActiveFallback) != 0);
      break;
    case EventKind::kRunEnd:
      label("algorithm");
      num("slots", ev.a);
      num("newton_iterations", ev.b);
      num("warm_fallback_slots", ev.c);
      num("active_fallback_slots", ev.d);
      real("total_cost", ev.x);
      break;
    case EventKind::kResult:
      label("algorithm");
      num("rep", ev.a);
      real("cost", ev.x);
      real("ratio", ev.y);
      break;
    case EventKind::kRepEnd:
      num("rep", ev.a);
      break;
    case EventKind::kExperimentEnd:
      num("simulations", ev.a);
      break;
  }
  os << "}\n";
}

}  // namespace

void EventLog::flush_to(std::ostream& os) const {
  const std::size_t n = recorded();
  os << "{\"schema\":\"" << kEventsSchema << "\",\"events\":" << n
     << ",\"dropped\":" << dropped() << "}\n";
  for (std::size_t i = 0; i < n; ++i) write_event(os, i, buffer_[i]);
}

bool EventLog::flush() {
  if (options_.path.empty()) return false;
  std::ofstream os(options_.path);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write events to %s\n",
                 options_.path.c_str());
    return false;
  }
  flush_to(os);
  flushed_ = static_cast<bool>(os);
  return flushed_;
}

namespace {

std::mutex g_events_mutex;
// Owned global log; a static unique_ptr so the destructor (and its flush)
// runs at exit after main returns.
std::unique_ptr<EventLog>& global_events_slot() {
  static std::unique_ptr<EventLog> slot;
  return slot;
}

std::atomic<EventLog*> g_events{nullptr};
std::once_flag g_events_init;

void init_global_events_from_env() {
  EventLogOptions options;
  if (!events_options_from_env(options)) return;
  std::lock_guard<std::mutex> lock(g_events_mutex);
  global_events_slot() = std::make_unique<EventLog>(std::move(options));
  g_events.store(global_events_slot().get(), std::memory_order_release);
}

}  // namespace

bool events_options_from_env(EventLogOptions& options) {
  const char* path = std::getenv("ECA_EVENTS");
  if (path == nullptr) return false;
  // Same fail-fast contract as ECA_METRICS: a set-but-useless value must
  // not silently run an unobserved configuration.
  if (path[0] == '\0') {
    std::fprintf(stderr,
                 "error: ECA_EVENTS is set but empty (must name the JSONL "
                 "output path; unset it to disable event streaming)\n");
    std::exit(2);
  }
  options.path = path;
  if (const char* cap = std::getenv("ECA_EVENTS_CAP")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(cap, &end, 10);
    if (end == cap || *end != '\0' || parsed < 1) {
      std::fprintf(stderr,
                   "error: ECA_EVENTS_CAP='%s' is invalid (must be an "
                   "integer >= 1; unset it for the default %zu)\n",
                   cap, options.capacity);
      std::exit(2);
    }
    options.capacity = static_cast<std::size_t>(parsed);
  }
  // Fail fast on an unwritable path too — discovering it at exit would
  // silently lose the whole stream.
  {
    std::ofstream probe(options.path);
    if (!probe) {
      std::fprintf(stderr, "error: ECA_EVENTS='%s' is not writable\n",
                   options.path.c_str());
      std::exit(2);
    }
  }
  return true;
}

EventLog* global_events() {
  std::call_once(g_events_init, init_global_events_from_env);
  return g_events.load(std::memory_order_acquire);
}

EventLog* install_global_events(EventLogOptions options) {
  std::call_once(g_events_init, [] {});  // suppress env init from now on
  std::lock_guard<std::mutex> lock(g_events_mutex);
  global_events_slot() = std::make_unique<EventLog>(std::move(options));
  g_events.store(global_events_slot().get(), std::memory_order_release);
  return global_events_slot().get();
}

void drop_global_events() {
  std::call_once(g_events_init, [] {});
  std::lock_guard<std::mutex> lock(g_events_mutex);
  global_events_slot().reset();
  g_events.store(nullptr, std::memory_order_release);
}

}  // namespace eca::obs
