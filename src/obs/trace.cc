#include "obs/trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace eca::obs {

std::uint64_t steady_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceSession::TraceSession(TraceOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  buffer_.resize(options_.capacity);
}

TraceSession::~TraceSession() {
  if (!options_.path.empty() && !flushed_) flush();
}

void TraceSession::record(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns, const char* arg_name,
                          double arg_value) {
  const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= buffer_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& ev = buffer_[idx];
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = static_cast<std::uint32_t>(internal::thread_ordinal());
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
}

std::size_t TraceSession::recorded() const {
  const std::size_t claimed = cursor_.load(std::memory_order_relaxed);
  return claimed < buffer_.size() ? claimed : buffer_.size();
}

std::size_t TraceSession::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void TraceSession::flush_to(std::ostream& os) const {
  const std::size_t n = recorded();
  os << "[\n";
  char line[256];
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = buffer_[i];
    const double ts_us = static_cast<double>(ev.start_ns) * 1e-3;
    const double dur_us = static_cast<double>(ev.dur_ns) * 1e-3;
    int written;
    if (ev.arg_name != nullptr) {
      written = std::snprintf(
          line, sizeof(line),
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"%s\":%.17g}}",
          ev.name, options_.pid, ev.tid, ts_us, dur_us, ev.arg_name,
          ev.arg_value);
    } else {
      written = std::snprintf(
          line, sizeof(line),
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
          "\"ts\":%.3f,\"dur\":%.3f}",
          ev.name, options_.pid, ev.tid, ts_us, dur_us);
    }
    if (written < 0) continue;
    os << line << (i + 1 < n ? ",\n" : "\n");
  }
  os << "]\n";
}

bool TraceSession::flush() {
  if (options_.path.empty()) return false;
  std::ofstream os(options_.path);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n",
                 options_.path.c_str());
    return false;
  }
  flush_to(os);
  flushed_ = static_cast<bool>(os);
  return flushed_;
}

namespace {

std::mutex g_trace_mutex;
// Owned global session; a static unique_ptr so the destructor (and its
// flush) runs at exit after main returns.
std::unique_ptr<TraceSession>& global_trace_slot() {
  static std::unique_ptr<TraceSession> slot;
  return slot;
}

std::atomic<TraceSession*> g_trace{nullptr};
std::once_flag g_trace_init;

void init_global_trace_from_env() {
  const char* path = std::getenv("ECA_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  TraceOptions options;
  options.path = path;
  if (const std::size_t cap = trace_cap_from_env(); cap > 0) {
    options.capacity = cap;
  }
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  global_trace_slot() = std::make_unique<TraceSession>(std::move(options));
  g_trace.store(global_trace_slot().get(), std::memory_order_release);
}

}  // namespace

std::size_t trace_cap_from_env() {
  const char* cap = std::getenv("ECA_TRACE_CAP");
  if (cap == nullptr) return 0;
  // Fail-fast contract shared by every ECA_* knob: a set-but-invalid cap
  // (previously silently ignored by atoll) must not run a configuration
  // the user did not ask for.
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(cap, &end, 10);
  if (errno != 0 || end == cap || *end != '\0' || parsed < 1) {
    std::fprintf(stderr,
                 "error: ECA_TRACE_CAP='%s' is invalid (must be an integer "
                 ">= 1; unset it for the default)\n",
                 cap);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

TraceSession* global_trace() {
  std::call_once(g_trace_init, init_global_trace_from_env);
  return g_trace.load(std::memory_order_acquire);
}

TraceSession* install_global_trace(TraceOptions options) {
  std::call_once(g_trace_init, [] {});  // suppress env init from now on
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  global_trace_slot() = std::make_unique<TraceSession>(std::move(options));
  g_trace.store(global_trace_slot().get(), std::memory_order_release);
  return global_trace_slot().get();
}

void drop_global_trace() {
  std::call_once(g_trace_init, [] {});
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  global_trace_slot().reset();
  g_trace.store(nullptr, std::memory_order_release);
}

}  // namespace eca::obs
