// Run-level telemetry: the per-slot convergence and cost records that the
// simulator assembles into an `eca.telemetry.v3` summary (serialized by
// src/io/serialize.h).
//
// Three layers:
//  * SolveTelemetry — one P2 solve, filled by RegularizedSolver
//    (iterations, μ-continuation steps, KKT residuals at exit, warm-start
//    outcome, stage timings). Timings are only populated when
//    obs::metrics_enabled(); the convergence fields are always set.
//  * SlotTelemetry — one simulated slot: the weighted cost split in the
//    paper's Cost_op / Cost_sq / Cost_rc / Cost_mg decomposition plus the
//    slot's SolveTelemetry when the algorithm exposes one. With a reference
//    trajectory attached (schema v3, see attach_reference) it also carries
//    the slot's competitive-ratio attribution: the reference's weighted
//    cost, the cumulative online/offline ratio through this slot, and the
//    per-component regret split.
//  * RunTelemetry — one simulator run; the per-slot cost splits sum to the
//    run's weighted total objective (within float-addition reassociation,
//    which the schema checker bounds at 1e-9 relative). v3 additionally
//    surfaces the trace/event drop counters that previously vanished
//    silently at the end of a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eca::obs {

inline constexpr const char* kTelemetrySchema = "eca.telemetry.v3";

struct SolveTelemetry {
  int newton_iterations = 0;
  // Number of strict decreases of the barrier target μ (the continuation
  // path length; shorter when warm starting re-enters near the end).
  int mu_steps = 0;
  // KKT quality at exit, both scaled by the solver's cost scale: average
  // complementarity and the infinity norm of the dual residual.
  double kkt_comp_avg = 0.0;
  double kkt_dual_residual = 0.0;
  bool warm_started = false;
  // Warm start was requested and carried duals existed, but the repaired
  // point was rejected and the solve fell back to the cold start.
  bool warm_fallback = false;
  // --- Active-set sparsification (schema v2) ---
  // active_set: the solve was requested on the active-set path;
  // active_fallback: it ended in the guaranteed dense fallback.
  bool active_set = false;
  bool active_fallback = false;
  // Admit-and-resolve rounds used (0 on the dense path), the final number
  // of active variables Σ_j |S_j|, the largest per-user support, and the
  // worst pinned reduced-cost deficit of the final certification sweep
  // (cost-scale relative; 0 when every pinned variable passed outright).
  int active_rounds = 0;
  long long active_nnz = 0;
  int active_support_max = 0;
  double certify_residual = 0.0;
  // Wall-clock stage split (seconds); zero when metrics are disabled.
  double solve_seconds = 0.0;
  double assembly_seconds = 0.0;  // chunk-assembly passes (across workers)
  double factor_seconds = 0.0;    // (I+1)² Schur LU factorizations
};

struct SlotTelemetry {
  std::size_t slot = 0;
  // Weighted cost components: operation and service quality carry the
  // static weight, reconfiguration and migration the dynamic weight, so
  // cost_total() matches the run objective's slot contribution.
  double cost_operation = 0.0;
  double cost_service_quality = 0.0;
  double cost_reconfiguration = 0.0;
  double cost_migration = 0.0;
  [[nodiscard]] double cost_total() const {
    return cost_operation + cost_service_quality + cost_reconfiguration +
           cost_migration;
  }
  // --- Competitive-ratio attribution (schema v3) ---
  // Meaningful only when the owning run's has_reference is set (filled by
  // attach_reference against the offline-opt trajectory of the same
  // instance). regret_* decompose this slot's excess over the reference
  // into the paper's cost terms: Σ regret_* == cost_total() - offline_cost.
  double offline_cost = 0.0;  // reference trajectory's weighted slot cost
  double ratio_cum = 0.0;     // Σ_{s<=t} cost / Σ_{s<=t} offline cost
  double regret_operation = 0.0;
  double regret_service_quality = 0.0;
  double regret_reconfiguration = 0.0;
  double regret_migration = 0.0;
  [[nodiscard]] double regret_total() const {
    return regret_operation + regret_service_quality +
           regret_reconfiguration + regret_migration;
  }
  bool has_solve = false;  // solve below is meaningful
  SolveTelemetry solve;
};

struct RunTelemetry {
  std::string algorithm;
  std::size_t num_clouds = 0;
  std::size_t num_users = 0;
  std::size_t num_slots = 0;
  double total_cost = 0.0;  // the run's weighted P0 objective
  double wall_seconds = 0.0;
  // --- Competitive-ratio attribution (schema v3) ---
  // True once attach_reference has filled the per-slot ratio fields.
  bool has_reference = false;
  double offline_total_cost = 0.0;  // the reference run's weighted objective
  // --- Drop accounting (schema v3) ---
  // Observability events that could not be buffered during this run
  // (fixed-capacity drop-on-overflow buffers; raise ECA_TRACE_CAP /
  // ECA_EVENTS_CAP when nonzero). Zero when the corresponding sink is off.
  std::uint64_t trace_dropped = 0;
  std::uint64_t events_dropped = 0;
  std::vector<SlotTelemetry> slots;

  [[nodiscard]] bool empty() const { return slots.empty(); }
  // Final empirical competitive ratio (0 without a reference).
  [[nodiscard]] double ratio() const {
    return has_reference && offline_total_cost > 0.0
               ? total_cost / offline_total_cost
               : 0.0;
  }
  // Σ_t slot cost — equals total_cost up to float reassociation.
  [[nodiscard]] double slot_cost_sum() const;
  // Aggregates over the per-slot solve records (0 when none present).
  [[nodiscard]] long long total_newton_iterations() const;
  [[nodiscard]] std::size_t warm_started_slots() const;
  [[nodiscard]] std::size_t warm_fallback_slots() const;
  [[nodiscard]] std::size_t active_set_slots() const;
  [[nodiscard]] std::size_t active_fallback_slots() const;
};

// Fills `run`'s competitive-ratio attribution against `reference` (the
// offline-opt trajectory of the same instance): per-slot offline_cost,
// cumulative ratio, and the per-component regret split, plus the run-level
// has_reference/offline_total_cost pair. Slots beyond the reference's length
// attribute against a zero-cost reference slot (regret == cost). No-op when
// the reference is empty.
void attach_reference(RunTelemetry& run, const RunTelemetry& reference);

// Accumulates one run's telemetry slot by slot; the simulator drives it.
class TelemetrySink {
 public:
  void begin_run(std::string algorithm, std::size_t num_clouds,
                 std::size_t num_users, std::size_t num_slots);
  void record_slot(SlotTelemetry slot);
  // Seals the run (fills totals) and returns it; the sink is reset.
  RunTelemetry finish(double total_cost, double wall_seconds);

 private:
  RunTelemetry run_;
};

}  // namespace eca::obs
