// Process-wide metrics registry: counters, gauges and log2-bucketed
// histograms, updated lock-free from any thread.
//
// Design contract (mirrors the experiment runner's determinism story):
//  * Every additive metric is sharded into kMetricShards cache-line-padded
//    cells; a thread updates only the cell of its own shard (thread-local
//    ordinal modulo kMetricShards), so increments never contend and never
//    tear. Snapshots merge cells in FIXED shard order (0, 1, ..., N-1) —
//    integer totals are exact regardless of scheduling, and double totals
//    are bit-deterministic whenever each double metric is fed from a single
//    thread (which is what the instrumentation in solve/algo keeps to: the
//    values that must be reproducible — iteration counts, cost splits —
//    are recorded by the thread driving the slot sequence, never by the
//    chunk workers, which only record wall-clock timings).
//  * Enable/disable is one branch on a cached atomic bool
//    (metrics_enabled()). Initialized once from ECA_METRICS
//    (on|off|1|0|true|false|yes|no, default on; anything else fail-fasts
//    with exit code 2 — a typo must not silently run the wrong
//    configuration). set_metrics_enabled() overrides at runtime.
//  * Handle acquisition (counter()/gauge()/histogram()) allocates and
//    locks; callers cache handles (function-local statics in hot code).
//    add()/set()/record() on a handle never allocate — this is what the
//    counting-allocator test in tests/solve/newton_alloc_test.cc pins down.
//
// This library intentionally depends on nothing else in the repo (not even
// src/common) so that eca_common itself can be instrumented.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eca::obs {

inline constexpr std::size_t kMetricShards = 32;
// Bucket b holds values v with bit_width(v) == b, i.e. v in [2^(b-1), 2^b);
// bucket 0 holds v == 0. 64-bit values need buckets 0..64.
inline constexpr std::size_t kHistogramBuckets = 65;

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
// Small dense per-thread ordinal (0, 1, 2, ... in first-touch order); also
// used by TraceSession as the tid of emitted spans.
std::size_t thread_ordinal();
inline std::size_t shard_index() { return thread_ordinal() % kMetricShards; }
// Portable fetch_add for atomic<double> (CAS loop; C++20 fetch_add for
// floating point is not yet universal).
inline void atomic_fadd(std::atomic<double>& cell, double v) {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace internal

// Number of distinct threads that have touched the metrics/trace layer so
// far (the high-water mark of the thread-ordinal allocator). Shard
// utilisation observability only: the value depends on the resolved worker
// counts, so it belongs in log lines — never in deterministic artifacts.
std::size_t threads_seen();

// True when instrumentation should record. One relaxed load + branch.
inline bool metrics_enabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
// Runtime override (tests, embedders). Returns the previous value.
bool set_metrics_enabled(bool enabled);

// Log2 bucket index of a value (0 for 0, else floor(log2(v)) + 1).
std::size_t histogram_bucket(std::uint64_t value);
// Inclusive-exclusive value range [lo, hi) covered by a bucket.
std::uint64_t histogram_bucket_floor(std::size_t bucket);

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) DoubleCell {
  std::atomic<double> value{0.0};
};

// Monotonically increasing integer total.
class Counter {
 public:
  void add(std::uint64_t v = 1) {
    if (!metrics_enabled()) return;
    cells_[internal::shard_index()].value.fetch_add(v,
                                                    std::memory_order_relaxed);
  }
  // Merged total, shards summed in fixed order.
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<CounterCell, kMetricShards> cells_;
};

// Additive double total (e.g. accumulated cost or seconds). Deterministic
// across runs when fed from a single thread — see the file comment.
class DoubleCounter {
 public:
  void add(double v) {
    if (!metrics_enabled()) return;
    internal::atomic_fadd(cells_[internal::shard_index()].value, v);
  }
  [[nodiscard]] double total() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

 private:
  friend class MetricsRegistry;
  explicit DoubleCounter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<DoubleCell, kMetricShards> cells_;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed log2-bucket histogram over unsigned 64-bit samples (typically
// nanoseconds or iteration counts).
class Histogram {
 public:
  void record(std::uint64_t v) {
    if (!metrics_enabled()) return;
    Shard& s = shards_[internal::shard_index()];
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const;
  // Merged bucket counts in fixed shard order.
  [[nodiscard]] std::array<std::uint64_t, kHistogramBuckets> buckets() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

// Point-in-time merged view; metric order is registration order, which is
// itself deterministic for a fixed program (static-local handles register
// on first execution of their acquisition site).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> double_counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Lookup helpers; return fallback when the metric is absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double double_counter(std::string_view name,
                                      double fallback = 0.0) const;
};

class MetricsRegistry {
 public:
  // The process-wide registry used by all ECA instrumentation.
  static MetricsRegistry& global();

  // Finds or creates a metric. Stable addresses for the process lifetime —
  // cache the reference. Registering the same name with two different kinds
  // is a programming error and aborts.
  Counter& counter(std::string_view name);
  DoubleCounter& double_counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  // Zeroes every cell of every metric, keeping the registrations (and the
  // handles pointing at them) valid. For per-run scoping and tests.
  void reset_values();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<DoubleCounter>> double_counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace eca::obs
