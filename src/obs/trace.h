// Slot-span tracing in Chrome trace format.
//
// A TraceSession owns a fixed-capacity, lock-free event buffer. TraceSpan
// (or the ECA_TRACE_SPAN macro) records one complete event ("ph":"X") per
// scope: two clock reads and one atomic slot claim, zero heap allocations —
// safe on the Newton hot path. When the buffer fills, further events are
// dropped (and counted) rather than grown, preserving the no-allocation
// guarantee. Span names must be string literals (the buffer stores the
// pointer, not a copy).
//
// The clock is injected (ClockFn, monotonic nanoseconds) so tests can fake
// time; the default reads std::chrono::steady_clock.
//
// flush() writes one event per line:
//
//   [
//   {"name":"p2_solve","ph":"X","pid":1,"tid":0,"ts":12.345,"dur":8.100},
//   {"name":"slot","ph":"X","pid":1,"tid":0,"ts":2.000,"dur":30.000,
//    "args":{"t":4}}
//   ]
//
// — a strict JSON array (loadable with any JSON parser, and by
// chrome://tracing and Perfetto directly) that is also line-oriented, so
// `grep`/`wc -l` style processing works. Timestamps are microseconds, as
// the trace-event format requires.
//
// A process-global session is configured from ECA_TRACE=<path> on first use
// and flushed at exit; global_trace() returns nullptr when tracing is off,
// and every TraceSpan on a null session is a no-op.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace eca::obs {

// Monotonic nanosecond clock; injectable for tests.
using ClockFn = std::uint64_t (*)();
std::uint64_t steady_clock_ns();

struct TraceOptions {
  std::string path;  // output file; empty => flush() only via flush_to()
  std::size_t capacity = 1 << 16;  // max buffered events
  ClockFn clock = &steady_clock_ns;
  std::uint32_t pid = 1;
};

struct TraceEvent {
  const char* name = nullptr;  // string literal
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  const char* arg_name = nullptr;  // string literal; nullptr = no args
  double arg_value = 0.0;
};

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options);
  ~TraceSession();  // flushes to options.path if set and not yet flushed

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] std::uint64_t now() const { return options_.clock(); }

  // Records one complete event. Lock-free, allocation-free; drops (and
  // counts) once the buffer is full.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              const char* arg_name = nullptr, double arg_value = 0.0);

  // Events recorded so far (capped at capacity) / dropped for lack of room.
  [[nodiscard]] std::size_t recorded() const;
  [[nodiscard]] std::size_t dropped() const;

  // Serializes the buffered events. flush() opens options.path ("" =>
  // no-op, returns false). Events recorded concurrently with a flush may or
  // may not be included; flush at quiescent points.
  bool flush();
  void flush_to(std::ostream& os) const;

 private:
  TraceOptions options_;
  std::vector<TraceEvent> buffer_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> dropped_{0};
  bool flushed_ = false;
};

// The env-configured (ECA_TRACE=<path>) process-global session; nullptr
// when tracing is disabled. Flushed by a static destructor at exit.
// Parses ECA_TRACE_CAP, failing fast with exit(2) when the value is set
// but not a positive integer; returns 0 when unset. Read once by the
// global_trace() initialization; exposed so death tests can exercise the
// validation directly.
std::size_t trace_cap_from_env();

TraceSession* global_trace();
// Replaces the global session (tests, embedders). The registry takes
// ownership; the previous session is flushed and destroyed. Pass nullptr
// to disable. Returns the new session.
TraceSession* install_global_trace(TraceOptions options);
void drop_global_trace();

// RAII span: start time at construction, recorded at destruction.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, const char* name)
      : session_(session), name_(name) {
    if (session_ != nullptr) start_ = session_->now();
  }
  ~TraceSpan() {
    if (session_ != nullptr) {
      session_->record(name_, start_, session_->now() - start_, arg_name_,
                       arg_value_);
    }
  }
  // Attaches one numeric argument emitted with the event ("args":{name:v}).
  void set_arg(const char* name, double value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* session_;
  const char* name_;
  std::uint64_t start_ = 0;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
};

#define ECA_OBS_CONCAT_INNER(a, b) a##b
#define ECA_OBS_CONCAT(a, b) ECA_OBS_CONCAT_INNER(a, b)
// Scoped span on the global session (no-op when tracing is off).
#define ECA_TRACE_SPAN(name)                             \
  ::eca::obs::TraceSpan ECA_OBS_CONCAT(eca_trace_span_, \
                                       __LINE__)(::eca::obs::global_trace(), \
                                                 (name))

}  // namespace eca::obs
