// Quickstart: build an edge-cloud scenario, run the paper's online
// algorithm, and compare it with the offline optimum.
//
//   $ ./examples/quickstart
//
// Walks through the three core API layers:
//   1. sim::make_random_walk_instance — generate a problem instance
//      (15 Rome metro-station edge clouds, random-walk users, priced
//      exactly as in the paper's evaluation),
//   2. algo::OnlineApprox + sim::Simulator — run the regularization-based
//      online algorithm slot by slot,
//   3. algo::solve_offline — the full-horizon LP lower bound, giving the
//      empirical competitive ratio.
#include <cstdio>

#include "algo/offline.h"
#include "algo/online_approx.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

int main() {
  using namespace eca;

  // 1. A small instance: 12 users walking the Rome metro for 15 minutes.
  sim::ScenarioOptions options;
  options.num_users = 12;
  options.num_slots = 15;
  options.seed = 7;
  const model::Instance instance = sim::make_random_walk_instance(options);
  std::printf("instance: %zu clouds, %zu users, %zu slots, demand %.0f\n",
              instance.num_clouds, instance.num_users, instance.num_slots,
              instance.total_demand());

  // 2. Run the online algorithm. It sees one slot at a time and pays
  //    operation, service-quality, reconfiguration and migration costs.
  algo::OnlineApprox online;  // default ε1 = ε2 = 1
  const sim::SimulationResult result = sim::Simulator::run(instance, online);
  std::printf("\nonline-approx total cost: %.2f\n", result.weighted_total);
  std::printf("  operation       %.2f\n", result.cost.operation);
  std::printf("  service quality %.2f\n", result.cost.service_quality);
  std::printf("  reconfiguration %.2f\n", result.cost.reconfiguration);
  std::printf("  migration       %.2f\n", result.cost.migration);
  std::printf("  feasibility: max constraint violation %.2e\n",
              result.max_violation);

  // 3. The offline optimum (sees the whole future) for the ratio.
  const algo::OfflineResult offline = algo::solve_offline(instance);
  const double opt =
      sim::Simulator::score(instance, "offline", offline.allocations)
          .weighted_total;
  std::printf("\noffline optimum: %.2f\n", opt);
  std::printf("empirical competitive ratio: %.3f (paper reports ~1.1)\n",
              result.weighted_total / opt);

  // Theorem 2's worst-case guarantee for these capacities and ε = 1.
  std::printf("theoretical worst-case bound r = %.1f\n",
              model::competitive_ratio_bound(instance, 1.0, 1.0));
  return 0;
}
