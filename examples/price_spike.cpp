// Price-dynamics scenario: what happens when one edge cloud's operation
// price spikes mid-experiment?
//
//   $ ./examples/price_spike
//
// Builds a hand-crafted instance where users are stationary (mobility is
// not the driver here) and cloud 0 — initially the cheapest — becomes 8x
// more expensive for a stretch of slots. Shows per-slot costs of
// online-greedy vs online-approx: greedy reacts instantly (and pays the
// migration both ways), while the regularized algorithm hedges, moving
// only as much as the price gap justifies — the Figure-1 story, driven by
// prices instead of mobility.
#include <cstdio>
#include <iostream>

#include "algo/baselines.h"
#include "algo/online_approx.h"
#include "common/table.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

int main() {
  using namespace eca;

  // Start from a stationary-user scenario, then inject the spike.
  sim::ScenarioOptions options;
  options.num_users = 15;
  options.num_slots = 24;
  options.seed = 99;
  const mobility::StationaryMobility stationary(geo::rome_metro());
  model::Instance instance =
      sim::make_instance(geo::rome_metro(), stationary, options);

  // Make cloud 0 clearly the cheapest, then spike it for slots 8..15.
  for (std::size_t t = 0; t < instance.num_slots; ++t) {
    instance.operation_price[t][0] = 0.2;
    if (t >= 8 && t < 16) instance.operation_price[t][0] = 1.6;
  }

  algo::OnlineGreedy greedy;
  algo::OnlineApprox approx;
  const sim::SimulationResult greedy_result =
      sim::Simulator::run(instance, greedy);
  const sim::SimulationResult approx_result =
      sim::Simulator::run(instance, approx);

  Table table({"slot", "price(cloud 0)", "greedy slot cost",
               "approx slot cost", "greedy@0", "approx@0"});
  for (std::size_t t = 0; t < instance.num_slots; ++t) {
    table.add_row(
        {std::to_string(t), Table::num(instance.operation_price[t][0], 1),
         Table::num(greedy_result.per_slot[t], 1),
         Table::num(approx_result.per_slot[t], 1),
         Table::num(greedy_result.allocations[t].cloud_totals()[0], 1),
         Table::num(approx_result.allocations[t].cloud_totals()[0], 1)});
  }
  table.print(std::cout);
  std::printf("\ntotals: greedy %.1f vs online-approx %.1f\n",
              greedy_result.weighted_total, approx_result.weighted_total);
  std::printf(
      "watch the last two columns: greedy evacuates cloud 0 abruptly at the\n"
      "spike and floods back after it, while online-approx moves "
      "gradually.\n");
  return 0;
}
