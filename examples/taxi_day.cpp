// A realistic scenario: taxis in central Rome over one simulated hour.
//
//   $ ./examples/taxi_day [users] [slots]
//
// Mirrors the paper's real-world evaluation setting: users in taxis are
// served from 15 metro-station edge clouds; capacity tracks attachment
// frequency; operation prices fluctuate each minute. Runs the full
// algorithm roster and prints a Figure-2-style comparison for one hour.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "sim/runner.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace eca;

  sim::ScenarioOptions options;
  options.num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 25;
  options.num_slots = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  options.seed = 2026;

  // Peek at the mobility the instance is built from.
  const model::Instance instance = sim::make_rome_taxi_instance(options, 0);
  std::size_t handovers = 0;
  for (std::size_t t = 1; t < instance.num_slots; ++t) {
    for (std::size_t j = 0; j < instance.num_users; ++j) {
      if (instance.attachment[t][j] != instance.attachment[t - 1][j]) {
        ++handovers;
      }
    }
  }
  std::printf("taxi hour: %zu users, %zu one-minute slots, %zu handovers\n",
              instance.num_users, instance.num_slots, handovers);
  std::printf("total demand %.0f, total capacity %.1f (80%% utilization)\n\n",
              instance.total_demand(),
              linalg::sum(instance.capacities()));

  sim::ExperimentOptions experiment;
  experiment.repetitions = 1;
  const sim::ExperimentResult result = sim::run_experiment(
      [&](int) { return sim::make_rome_taxi_instance(options, 0); },
      sim::paper_algorithms(/*include_static_once=*/true), experiment);

  Table table({"algorithm", "cost", "vs offline", "wall s"});
  for (const auto& summary : result.algorithms) {
    table.add_row({summary.name, Table::num(summary.absolute_cost.mean(), 1),
                   Table::num(summary.ratio.mean(), 3),
                   Table::num(summary.wall_seconds.mean(), 2)});
  }
  table.add_row({"offline-opt", Table::num(result.offline_cost.mean(), 1),
                 "1.000", "-"});
  table.print(std::cout);
  std::printf(
      "\nthe holistic algorithms (online-greedy, online-approx) track the\n"
      "offline optimum; online-approx should be the closest.\n");
  return 0;
}
