// Mobility playground: generate traces from every built-in mobility model
// and compare their statistics — and how much each pattern costs the
// online algorithm.
//
//   $ ./examples/mobility_patterns
#include <cstdio>
#include <iostream>
#include <memory>

#include "algo/online_approx.h"
#include "common/table.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

int main() {
  using namespace eca;
  const auto& metro = geo::rome_metro();

  struct Entry {
    const char* name;
    std::unique_ptr<mobility::MobilityModel> model;
  };
  std::vector<Entry> models;
  models.push_back({"stationary",
                    std::make_unique<mobility::StationaryMobility>(metro)});
  models.push_back(
      {"random-walk", std::make_unique<mobility::RandomWalkMobility>(metro)});
  models.push_back({"taxi", std::make_unique<mobility::TaxiMobility>(metro)});
  models.push_back({"ping-pong (Ottaviano<->San Giovanni)",
                    std::make_unique<mobility::PingPongMobility>(metro, 0, 9,
                                                                 /*period=*/4)});

  sim::ScenarioOptions options;
  options.num_users = 15;
  options.num_slots = 24;
  options.seed = 17;

  Table table({"mobility", "handover rate", "busiest station",
               "online-approx cost", "dynamic share"});
  for (const auto& entry : models) {
    Rng rng(options.seed);
    const mobility::MobilityTrace trace =
        entry.model->generate(rng, options.num_users, options.num_slots);
    const auto freq = trace.attachment_frequency(metro.size());
    std::size_t busiest = 0;
    for (std::size_t i = 1; i < freq.size(); ++i) {
      if (freq[i] > freq[busiest]) busiest = i;
    }
    const model::Instance instance =
        sim::make_instance(metro, *entry.model, options);
    algo::OnlineApprox approx;
    const sim::SimulationResult result =
        sim::Simulator::run(instance, approx);
    table.add_row({entry.name, Table::num(trace.handover_rate(), 3),
                   metro.station(busiest).name,
                   Table::num(result.weighted_total, 1),
                   Table::num(result.cost.dynamic_cost() /
                                  result.weighted_total,
                              3)});
  }
  table.print(std::cout);
  std::printf(
      "\nmore movement -> more dynamic (reconfiguration + migration) cost.\n"
      "ping-pong is the adversarial pattern: every period forces a "
      "decision\nbetween following the users and eating the delay.\n");
  return 0;
}
