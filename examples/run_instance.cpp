// CLI: run any algorithm of the roster on a serialized problem instance.
//
//   $ ./examples/run_instance <instance-file> [algorithm]
//   $ ./examples/run_instance --demo            # writes demo.instance first
//
// Algorithms: online-approx (default), online-greedy, lazy-greedy,
// stat-opt, perf-opt, oper-opt, static-once, lookahead-<k>, offline.
//
// Together with the eca-instance text format (src/io/serialize.h) this lets
// real traces — e.g. the actual CRAWDAD Roma taxi dataset the paper used —
// be fed through every algorithm in the library without writing C++.
//
// Observability: set ECA_TELEMETRY=<path> to write the run's
// eca.telemetry.v3 summary (per-slot cost split + solver convergence),
// ECA_EVENTS=<path> for the eca.events.v1 JSONL lifecycle stream,
// ECA_METRICS_OUT=<path> for a Prometheus text dump of the metrics
// registry, ECA_TRACE=<path> for a Chrome-trace span file, and
// ECA_METRICS=off to turn instrumentation off entirely.
// See README.md §Observability.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "algo/baselines.h"
#include "algo/extensions.h"
#include "algo/offline.h"
#include "algo/online_approx.h"
#include "io/serialize.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace eca;

std::unique_ptr<algo::OnlineAlgorithm> make_algorithm(const std::string& name) {
  if (name == "online-approx") return std::make_unique<algo::OnlineApprox>();
  if (name == "online-greedy") return std::make_unique<algo::OnlineGreedy>();
  if (name == "lazy-greedy") return std::make_unique<algo::LazyGreedy>();
  if (name == "stat-opt") return std::make_unique<algo::StatOpt>();
  if (name == "perf-opt") return std::make_unique<algo::PerfOpt>();
  if (name == "oper-opt") return std::make_unique<algo::OperOpt>();
  if (name == "static-once") return std::make_unique<algo::StaticOnce>();
  if (name.rfind("lookahead-", 0) == 0) {
    algo::LookaheadOptions options;
    options.window = std::strtoul(name.c_str() + 10, nullptr, 10);
    if (options.window == 0) options.window = 2;
    return std::make_unique<algo::LookaheadOpt>(options);
  }
  return nullptr;
}

int run(const std::string& path, const std::string& algorithm_name) {
  std::string error;
  const auto instance = io::load_instance(path, &error);
  if (!instance) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("instance: %zu clouds, %zu users, %zu slots (mu = %.3g)\n",
              instance->num_clouds, instance->num_users, instance->num_slots,
              instance->weights.mu());

  if (algorithm_name == "offline") {
    const algo::OfflineResult offline = algo::solve_offline(*instance);
    if (offline.status != solve::SolveStatus::kOptimal) {
      std::fprintf(stderr, "offline solve failed: %s\n",
                   solve::to_string(offline.status));
      return 1;
    }
    const auto scored =
        sim::Simulator::score(*instance, "offline-opt", offline.allocations);
    std::printf("offline-opt cost: %.4f\n", scored.weighted_total);
    return 0;
  }

  auto algorithm = make_algorithm(algorithm_name);
  if (algorithm == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
    return 1;
  }
  const sim::SimulationResult result =
      sim::Simulator::run(*instance, *algorithm);
  std::printf("%s cost: %.4f\n", result.algorithm.c_str(),
              result.weighted_total);
  std::printf("  operation %.4f, service quality %.4f\n",
              result.cost.operation, result.cost.service_quality);
  std::printf("  reconfiguration %.4f, migration %.4f\n",
              result.cost.reconfiguration, result.cost.migration);
  std::printf("  max constraint violation %.2e, wall %.2fs\n",
              result.max_violation, result.wall_seconds);
  if (const char* telemetry_path = std::getenv("ECA_TELEMETRY")) {
    if (io::save_telemetry(telemetry_path, result.telemetry)) {
      std::printf("  telemetry (%s): %lld newton iterations, "
                  "%zu/%zu slots warm-started -> %s\n",
                  obs::kTelemetrySchema,
                  result.telemetry.total_newton_iterations(),
                  result.telemetry.warm_started_slots(),
                  result.telemetry.slots.size(), telemetry_path);
    } else {
      std::fprintf(stderr, "could not write telemetry to %s\n",
                   telemetry_path);
      return 1;
    }
  }
  const std::string metrics_out = io::metrics_out_path_from_env();
  if (!metrics_out.empty()) {
    if (io::save_metrics_snapshot(metrics_out,
                                  obs::MetricsRegistry::global().snapshot())) {
      std::printf("  metrics snapshot -> %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "could not write metrics snapshot to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  obs::EventLog* const events = obs::global_events();
  obs::TraceSession* const trace = obs::global_trace();
  std::printf("  obs: threads_seen=%zu trace_dropped=%zu "
              "events_recorded=%zu events_dropped=%zu\n",
              obs::threads_seen(),
              trace != nullptr ? trace->dropped() : std::size_t{0},
              events != nullptr ? events->recorded() : std::size_t{0},
              events != nullptr ? events->dropped() : std::size_t{0});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    sim::ScenarioOptions options;
    options.num_users = 10;
    options.num_slots = 12;
    options.seed = 4;
    const model::Instance instance = sim::make_rome_taxi_instance(options, 0);
    const std::string path = "demo.instance";
    if (!io::save_instance(path, instance)) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s; running online-approx on it:\n", path.c_str());
    return run(path, argc >= 3 ? argv[2] : "online-approx");
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <instance-file> [algorithm]\n"
                 "       %s --demo [algorithm]\n",
                 argv[0], argv[0]);
    return 2;
  }
  return run(argv[1], argc >= 3 ? argv[2] : "online-approx");
}
