// Property-harness driver: generates N seeded scenarios, runs the
// differential oracle on each, shrinks failures to minimal replay files and
// writes an eca.prop_summary.v1 JSON. This is the binary behind
// `scripts/check.sh fuzz` and the extended-seed-range soak.
//
//   prop_fuzz [--seed S] [--scenarios N] [--time-budget SEC]
//             [--replay FILE] [--replay-dir DIR] [--summary FILE]
//             [--no-shrink] [--no-offline] [--fault PLAN]
//
// Environment: ECA_PROP_SEED / ECA_PROP_SCENARIOS override the defaults
// (flags win over environment); both fail fast on invalid values.
// Exit code: 0 = all scenarios verified, 1 = at least one oracle violation,
// 2 = usage/configuration error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/harness.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--scenarios N] [--time-budget SEC]\n"
      "          [--replay FILE] [--replay-dir DIR] [--summary FILE]\n"
      "          [--no-shrink] [--no-offline] [--fault PLAN]\n",
      argv0);
  std::exit(2);
}

const char* arg_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(argv[0]);
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  using eca::check::HarnessOptions;
  using eca::check::HarnessSummary;

  HarnessOptions options;
  options.seed = eca::check::prop_seed_from_env(1);
  options.num_scenarios = eca::check::prop_scenarios_from_env(50);
  std::string replay_file;
  std::string summary_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0) {
      options.seed = std::strtoull(arg_value(argc, argv, i), nullptr, 10);
    } else if (std::strcmp(arg, "--scenarios") == 0) {
      options.num_scenarios =
          static_cast<int>(std::strtol(arg_value(argc, argv, i), nullptr, 10));
      if (options.num_scenarios < 1) usage(argv[0]);
    } else if (std::strcmp(arg, "--time-budget") == 0) {
      options.time_budget_seconds =
          std::strtod(arg_value(argc, argv, i), nullptr);
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_file = arg_value(argc, argv, i);
    } else if (std::strcmp(arg, "--replay-dir") == 0) {
      options.replay_dir = arg_value(argc, argv, i);
    } else if (std::strcmp(arg, "--summary") == 0) {
      summary_file = arg_value(argc, argv, i);
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink_failures = false;
    } else if (std::strcmp(arg, "--no-offline") == 0) {
      options.oracle.run_offline = false;
    } else if (std::strcmp(arg, "--fault") == 0) {
      options.oracle.fault_plan = arg_value(argc, argv, i);
    } else {
      usage(argv[0]);
    }
  }

  // Replay mode: one saved scenario through the oracle, verbose verdict.
  if (!replay_file.empty()) {
    eca::check::Scenario scenario;
    std::string error;
    if (!eca::check::load_replay(replay_file, scenario, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    const eca::check::OracleReport report =
        eca::check::run_oracle(scenario, options.oracle);
    std::printf("replay %s: %s\n", replay_file.c_str(),
                report.ok() ? "VERIFIED" : "FAILED");
    for (const auto& violation : report.violations) {
      std::printf("  violation: %s\n", violation.c_str());
    }
    for (const auto& leg : report.legs) {
      std::printf("  %-22s cost=%.10g violation=%.3g\n", leg.name.c_str(),
                  leg.cost, leg.max_violation);
    }
    if (report.offline_ran) {
      std::printf("  offline optimum %.10g (online/offline ratio %.4f)\n",
                  report.offline_cost,
                  report.offline_cost > 0.0
                      ? report.online_cost / report.offline_cost
                      : 0.0);
    }
    return report.ok() ? 0 : 1;
  }

  const HarnessSummary summary = eca::check::run_harness(options);
  if (!summary_file.empty() &&
      !eca::check::save_summary_json(summary, summary_file)) {
    std::fprintf(stderr, "error: cannot write summary to %s\n",
                 summary_file.c_str());
    return 2;
  }
  std::printf(
      "prop harness: %d scenario(s), %d failure(s), offline legs on %d, "
      "worst KKT %.3g, worst infeasibility %.3g, %.2fs%s\n",
      summary.scenarios_run, summary.failures, summary.offline_legs_run,
      summary.worst_kkt, summary.worst_infeasibility, summary.wall_seconds,
      summary.budget_exhausted ? " (time budget exhausted)" : "");
  for (const auto& failure : summary.failure_details) {
    std::printf("  seed %llu: %s\n",
                static_cast<unsigned long long>(failure.scenario.seed),
                failure.first_violation.c_str());
    if (!failure.replay_path.empty()) {
      std::printf("    replay written to %s\n", failure.replay_path.c_str());
    }
  }
  return summary.ok() ? 0 : 1;
}
