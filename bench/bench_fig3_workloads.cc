// Figure 3 (Section V-C): the same real-world setting as Figure 2 under
// uniformly and normally distributed user workloads. The paper's finding:
// online-approx stays near-optimal (~1.1) under every distribution and
// improves on online-greedy by up to 70%.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace eca;
  using namespace eca::bench;

  const BenchScale scale = read_scale();
  print_header("Figure 3", "uniform and normal workload distributions",
               scale);

  Table table({"workload", "perf-opt", "oper-opt", "stat-opt",
               "online-greedy", "online-approx", "greedy/approx gain"});
  for (const workload::Distribution dist :
       {workload::Distribution::kUniform, workload::Distribution::kNormal,
        workload::Distribution::kPower}) {
    sim::ExperimentOptions experiment;
    experiment.repetitions = scale.repetitions;
    const sim::ExperimentResult result = sim::run_experiment(
        [&](int rep) {
          sim::ScenarioOptions options = scenario_from_scale(scale);
          options.workload.distribution = dist;
          options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
          return sim::make_rome_taxi_instance(options, rep % 6);
        },
        sim::paper_algorithms(), experiment);

    std::vector<std::string> row = {workload::to_string(dist)};
    for (const char* name : {"perf-opt", "oper-opt", "stat-opt",
                             "online-greedy", "online-approx"}) {
      row.push_back(ratio_cell(result.find(name)->ratio));
    }
    // Excess-cost reduction of approx over greedy ((greedy-approx)/greedy
    // overhead), the paper's "up to 70%" metric.
    const double greedy = result.find("online-greedy")->ratio.mean();
    const double approx = result.find("online-approx")->ratio.mean();
    row.push_back(
        Table::num(100.0 * (greedy - approx) / std::max(greedy - 1.0, 1e-9),
                   1) +
        "%");
    table.add_row(std::move(row));
  }
  emit(table, scale.csv);
  std::printf(
      "\nexpected shape: online-approx near-optimal under all three "
      "distributions,\nslightly better under uniform workloads (paper, "
      "Section V-C).\n");
  return 0;
}
