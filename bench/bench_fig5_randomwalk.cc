// Figure 5 (Section V-D): synthetic random-walk mobility on the Rome metro
// graph, varying the number of users. The paper varies 40..1000 users and
// finds online-approx flat around 1.1 while online-greedy reaches up to
// 1.8. The offline LP at 1000 users needs hours of solver time on our
// single-core budget, so the default sweep stops earlier; extend it with
// ECA_FIG5_USERS (comma-separated list).
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "algo/baselines.h"
#include "algo/online_approx.h"
#include "bench_common.h"

namespace {

std::vector<std::size_t> user_sweep() {
  const std::string spec = eca::env_string("ECA_FIG5_USERS", "20,40,80");
  std::vector<std::size_t> users;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const long value = std::strtol(token.c_str(), nullptr, 10);
    if (value > 0) users.push_back(static_cast<std::size_t>(value));
  }
  return users;
}

}  // namespace

int main() {
  using namespace eca;
  using namespace eca::bench;

  const BenchScale scale = read_scale();
  print_header("Figure 5", "random-walk mobility, varying user count",
               scale);

  Table table({"users", "online-greedy", "online-approx", "offline cost"});
  for (std::size_t users : user_sweep()) {
    sim::ExperimentOptions experiment;
    experiment.repetitions = std::max(1, scale.repetitions - 1);
    const sim::ExperimentResult result = sim::run_experiment(
        [&](int rep) {
          sim::ScenarioOptions options = scenario_from_scale(scale);
          options.num_users = users;
          options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
          return sim::make_random_walk_instance(options);
        },
        {{"online-greedy",
          [] { return std::make_unique<algo::OnlineGreedy>(); }},
         {"online-approx",
          [] { return std::make_unique<algo::OnlineApprox>(); }}},
        experiment);
    table.add_row({std::to_string(users),
                   ratio_cell(result.find("online-greedy")->ratio),
                   ratio_cell(result.find("online-approx")->ratio),
                   Table::num(result.offline_cost.mean(), 1)});
  }
  emit(table, scale.csv);
  std::printf(
      "\nexpected shape: online-approx stays ~1.1 regardless of user count;\n"
      "online-greedy is clearly worse (paper: up to 1.8).\n");
  return 0;
}
