// Figure 2 (Section V-B): empirical competitive ratios of the atomistic
// group (perf-opt, oper-opt, stat-opt) and the holistic group
// (online-greedy, online-approx) on the real-world setting — 15 Rome metro
// stations, taxi mobility, power-law workloads — across six hourly test
// cases (3pm..8pm). All values are normalized by the offline optimum.
//
// Also prints the Section-I headline: the total-cost reduction of
// online-approx versus the static approach (static-once), "up to 4x".
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace eca;
  using namespace eca::bench;

  const BenchScale scale = read_scale();
  print_header("Figure 2", "real-world (taxi) mobility, power workload",
               scale);

  const std::vector<std::string> hours = {"3pm", "4pm", "5pm",
                                          "6pm", "7pm", "8pm"};
  const auto roster = sim::paper_algorithms(/*include_static_once=*/true);
  Table table({"case", "static-once", "perf-opt", "oper-opt", "stat-opt",
               "online-greedy", "online-approx", "static/approx"});

  double worst_static_factor = 0.0;
  double worst_greedy_gain = 0.0;
  for (int hour = 0; hour < static_cast<int>(hours.size()); ++hour) {
    sim::ExperimentOptions experiment;
    experiment.repetitions = scale.repetitions;
    const sim::ExperimentResult result = sim::run_experiment(
        [&](int rep) {
          sim::ScenarioOptions options = scenario_from_scale(scale);
          options.workload.distribution = workload::Distribution::kPower;
          options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
          return sim::make_rome_taxi_instance(options, hour);
        },
        roster, experiment);

    std::vector<std::string> row = {hours[static_cast<std::size_t>(hour)]};
    for (const char* name : {"static-once", "perf-opt", "oper-opt",
                             "stat-opt", "online-greedy", "online-approx"}) {
      row.push_back(ratio_cell(result.find(name)->ratio));
    }
    const double static_factor =
        result.find("static-once")->absolute_cost.mean() /
        result.find("online-approx")->absolute_cost.mean();
    row.push_back(Table::num(static_factor, 2) + "x");
    table.add_row(std::move(row));
    worst_static_factor = std::max(worst_static_factor, static_factor);
    const double greedy_gain =
        (result.find("online-greedy")->ratio.mean() -
         result.find("online-approx")->ratio.mean()) /
        std::max(result.find("online-approx")->ratio.mean() - 1.0, 1e-9);
    worst_greedy_gain = std::max(worst_greedy_gain, greedy_gain);
  }
  emit(table, scale.csv);
  std::printf(
      "\nheadline checks: best static-over-approx cost factor %.2fx (paper: "
      "up to 4x);\nonline-approx ratio should sit near 1.1 while the "
      "atomistic group is clearly worse.\n",
      worst_static_factor);
  return 0;
}
