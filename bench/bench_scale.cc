// Scale benchmark for the exact user-class aggregation layer (src/agg,
// sim/aggregated.h): per-user online-approx vs the streaming class-space
// driver over a J sweep, plus one million-user long-horizon leg.
//
// Emits `BENCH_scale.json` (path override: ECA_BENCH_SCALE_JSON, schema
// eca.bench_scale.v1).
//
// Sweep: random-walk instances with the default 15 clouds, J multiplying by
// 10 from ECA_SCALE_MIN_USERS (default 10^3) to ECA_SCALE_MAX_USERS
// (default 10^6) over ECA_SCALE_SLOTS slots (default 6 — short horizons are
// where classes collapse hardest; see DESIGN.md §12 for the fragmentation
// dynamics that make long horizons approach C ≈ J). Positions are not
// retained (retain_positions = false), so a 10^6-user instance fits the
// bench's memory budget; both legs share the identical instance.
//
// Each point runs up to three legs:
//   1. aggregated   — the streaming driver (run_aggregated_online_approx):
//                     collapsed P2 per slot, O(I·C_t) state, never a
//                     per-(cloud, user) array;
//   2. per-user     — Simulator::run with plain OnlineApprox, J-sized
//                     solves (skipped above ECA_SCALE_PER_USER_MAX, default
//                     10^5: the leg exists to measure speedup and the
//                     cost cross-check, not to wait on 10^6-user Newton);
//   3. parity       — Simulator::run with OnlineApprox{aggregate_users} at
//                     small J (≤ ECA_SCALE_PARITY_MAX, default 10^4),
//                     cross-checked against leg 1 at 1e-9 relative: the two
//                     paths perform bitwise-identical solves and differ
//                     only in cost summation order.
//
// P2 is strictly convex, so legs 1 and 2 share a unique optimum and the
// recorded cost_delta_rel is solver tolerance (~1e-7), not degeneracy slack.
// collapse_ratio is J divided by the mean per-slot class count — the factor
// by which the aggregated path shrinks the average solve.
//
// The long leg (ECA_SCALE_LONG_USERS × ECA_SCALE_LONG_SLOTS, default
// 10^6 × 60, 0 users disables) runs the streaming driver only and records
// wall time, class statistics and peak RSS; perf_guard.py gates its memory
// footprint and feasibility.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/online_approx.h"
#include "bench_common.h"
#include "sim/aggregated.h"
#include "sim/simulator.h"

namespace {

using namespace eca;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Process-lifetime peak resident set in MB (ru_maxrss is KB on Linux).
// Monotone across legs, so per-point values record the peak *so far* — the
// long leg runs last and owns the figure that matters.
double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double mean_classes(const std::vector<std::size_t>& classes_per_slot) {
  if (classes_per_slot.empty()) return 0.0;
  double sum = 0.0;
  for (const std::size_t c : classes_per_slot) sum += static_cast<double>(c);
  return sum / static_cast<double>(classes_per_slot.size());
}

model::Instance make_scale_instance(const bench::BenchScale& scale,
                                    std::size_t users, std::size_t slots) {
  sim::ScenarioOptions options = bench::scenario_from_scale(scale);
  options.num_users = users;
  options.num_slots = slots;
  options.seed = scale.seed + users;
  options.retain_positions = false;
  return sim::make_random_walk_instance(options);
}

struct ScalePoint {
  std::size_t users = 0;
  std::size_t slots = 0;
  double seconds_aggregated = 0.0;
  std::size_t classes_slot0 = 0;
  std::size_t classes_max = 0;
  double classes_mean = 0.0;
  double collapse_ratio = 0.0;  // users / classes_mean
  double cost_aggregated = 0.0;
  double max_violation = 0.0;
  bool has_per_user = false;
  double seconds_per_user = 0.0;
  double cost_per_user = 0.0;
  double speedup = 0.0;         // per-user / aggregated wall time
  double cost_delta_rel = 0.0;  // |aggregated - per-user| / (1 + |per-user|)
  bool parity_checked = false;
  bool streaming_parity = false;
  double peak_rss_mb = 0.0;
};

struct LongRun {
  bool enabled = false;
  std::size_t users = 0;
  std::size_t slots = 0;
  double seconds = 0.0;
  std::size_t classes_max = 0;
  double classes_mean = 0.0;
  double collapse_ratio = 0.0;
  double cost = 0.0;
  double max_violation = 0.0;
  double peak_rss_mb = 0.0;
};

struct ScalePerf {
  std::size_t clouds = 0;
  std::size_t sweep_slots = 0;
  std::size_t per_user_max = 0;
  std::size_t parity_max = 0;
  std::vector<ScalePoint> points;
  LongRun long_run;
};

ScalePoint run_point(const bench::BenchScale& scale, std::size_t users,
                     const ScalePerf& perf) {
  ScalePoint point;
  point.users = users;
  point.slots = perf.sweep_slots;
  const model::Instance instance =
      make_scale_instance(scale, users, perf.sweep_slots);

  algo::OnlineApproxOptions aggregated_options;
  aggregated_options.aggregate_users = true;
  const sim::AggregatedRunResult aggregated =
      sim::run_aggregated_online_approx(instance, aggregated_options);
  point.seconds_aggregated = aggregated.wall_seconds;
  point.cost_aggregated = aggregated.weighted_total;
  point.max_violation = aggregated.max_violation;
  point.classes_slot0 =
      aggregated.classes_per_slot.empty() ? 0
                                          : aggregated.classes_per_slot.front();
  point.classes_max = aggregated.max_classes;
  point.classes_mean = mean_classes(aggregated.classes_per_slot);
  point.collapse_ratio = point.classes_mean > 0.0
                             ? static_cast<double>(users) / point.classes_mean
                             : 0.0;

  point.has_per_user = users <= perf.per_user_max;
  if (point.has_per_user) {
    algo::OnlineApprox per_user_algorithm;  // aggregate_users = false
    const auto start = std::chrono::steady_clock::now();
    const sim::SimulationResult reference =
        sim::Simulator::run(instance, per_user_algorithm);
    point.seconds_per_user = seconds_since(start);
    point.cost_per_user = reference.weighted_total;
    point.speedup = point.seconds_aggregated > 0.0
                        ? point.seconds_per_user / point.seconds_aggregated
                        : 0.0;
    point.cost_delta_rel =
        std::fabs(aggregated.weighted_total - reference.weighted_total) /
        (1.0 + std::fabs(reference.weighted_total));
  }

  point.parity_checked = users <= perf.parity_max;
  if (point.parity_checked) {
    algo::OnlineApprox aggregated_algorithm(aggregated_options);
    const sim::SimulationResult materialized =
        sim::Simulator::run(instance, aggregated_algorithm);
    bool parity =
        std::fabs(materialized.weighted_total - aggregated.weighted_total) <=
        1e-9 * std::max(1.0, std::fabs(materialized.weighted_total));
    parity = parity &&
             materialized.per_slot.size() == aggregated.per_slot.size();
    for (std::size_t t = 0; parity && t < aggregated.per_slot.size(); ++t) {
      parity = std::fabs(materialized.per_slot[t] - aggregated.per_slot[t]) <=
               1e-9 * std::max(1.0, std::fabs(materialized.per_slot[t]));
    }
    point.streaming_parity = parity;
  }

  point.peak_rss_mb = peak_rss_mb();
  return point;
}

ScalePerf time_scale_sweep(const bench::BenchScale& scale) {
  ScalePerf perf;
  const auto min_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_MIN_USERS", 1000, 1));
  const auto max_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_MAX_USERS", 1000000, 1));
  perf.sweep_slots = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_SLOTS", 6, 1));
  perf.per_user_max = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_PER_USER_MAX", 100000, 0));
  perf.parity_max = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_PARITY_MAX", 10000, 0));
  const auto long_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_LONG_USERS", 1000000, 0));
  const auto long_slots = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SCALE_LONG_SLOTS", 60, 1));

  for (std::size_t users = min_users; users <= max_users; users *= 10) {
    if (perf.clouds == 0) {
      perf.clouds = make_scale_instance(scale, 1, 1).num_clouds;
    }
    const ScalePoint point = run_point(scale, users, perf);
    perf.points.push_back(point);
    std::printf(
        "scale J=%8zu T=%zu: aggregated %.3fs (classes %zu..%zu, mean %.0f, "
        "collapse %.1fx)",
        point.users, point.slots, point.seconds_aggregated,
        point.classes_slot0, point.classes_max, point.classes_mean,
        point.collapse_ratio);
    if (point.has_per_user) {
      std::printf(", per-user %.3fs (%.2fx, cost delta %.2e)",
                  point.seconds_per_user, point.speedup, point.cost_delta_rel);
    }
    if (point.parity_checked) {
      std::printf(", parity=%s", point.streaming_parity ? "true" : "false");
    }
    std::printf(", viol %.2e, rss %.0f MB\n", point.max_violation,
                point.peak_rss_mb);
  }

  if (long_users > 0) {
    LongRun& run = perf.long_run;
    run.enabled = true;
    run.users = long_users;
    run.slots = long_slots;
    std::printf("long leg J=%zu T=%zu: building instance...\n", long_users,
                long_slots);
    const model::Instance instance =
        make_scale_instance(scale, long_users, long_slots);
    algo::OnlineApproxOptions options;
    options.aggregate_users = true;
    const sim::AggregatedRunResult result =
        sim::run_aggregated_online_approx(instance, options);
    run.seconds = result.wall_seconds;
    run.classes_max = result.max_classes;
    run.classes_mean = mean_classes(result.classes_per_slot);
    run.collapse_ratio = run.classes_mean > 0.0
                             ? static_cast<double>(long_users) / run.classes_mean
                             : 0.0;
    run.cost = result.weighted_total;
    run.max_violation = result.max_violation;
    run.peak_rss_mb = peak_rss_mb();
    std::printf(
        "long leg J=%zu T=%zu: %.1fs, classes max %zu mean %.0f "
        "(collapse %.1fx), viol %.2e, peak rss %.0f MB\n",
        run.users, run.slots, run.seconds, run.classes_max, run.classes_mean,
        run.collapse_ratio, run.max_violation, run.peak_rss_mb);
  }
  return perf;
}

void emit_json(const bench::BenchScale& scale, const ScalePerf& perf,
               const bench::EventsOverhead& events) {
  const std::string path =
      env_string("ECA_BENCH_SCALE_JSON", "BENCH_scale.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"eca.bench_scale.v1\",\n");
  bench::write_meta_json(out);
  bench::write_events_overhead_json(out, events);
  std::fprintf(out, "  \"clouds\": %zu,\n", perf.clouds);
  std::fprintf(out,
               "  \"sweep\": {\"slots\": %zu, \"per_user_max\": %zu, "
               "\"parity_max\": %zu, \"seed\": %llu},\n",
               perf.sweep_slots, perf.per_user_max, perf.parity_max,
               static_cast<unsigned long long>(scale.seed));
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < perf.points.size(); ++i) {
    const ScalePoint& p = perf.points[i];
    std::fprintf(
        out,
        "    {\"users\": %zu, \"slots\": %zu, "
        "\"seconds_aggregated\": %.4f, \"classes_slot0\": %zu, "
        "\"classes_max\": %zu, \"classes_mean\": %.1f, "
        "\"collapse_ratio\": %.2f, \"cost_aggregated\": %.6f, "
        "\"max_violation\": %.3e, \"has_per_user\": %s, "
        "\"seconds_per_user\": %.4f, \"cost_per_user\": %.6f, "
        "\"speedup\": %.3f, \"cost_delta_rel\": %.3e, "
        "\"parity_checked\": %s, \"streaming_parity\": %s, "
        "\"peak_rss_mb\": %.1f}%s\n",
        p.users, p.slots, p.seconds_aggregated, p.classes_slot0,
        p.classes_max, p.classes_mean, p.collapse_ratio, p.cost_aggregated,
        p.max_violation, p.has_per_user ? "true" : "false",
        p.seconds_per_user, p.cost_per_user, p.speedup, p.cost_delta_rel,
        p.parity_checked ? "true" : "false",
        p.streaming_parity ? "true" : "false", p.peak_rss_mb,
        i + 1 < perf.points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  if (perf.long_run.enabled) {
    const LongRun& r = perf.long_run;
    std::fprintf(out,
                 "  \"long_run\": {\"users\": %zu, \"slots\": %zu, "
                 "\"seconds\": %.2f, \"classes_max\": %zu, "
                 "\"classes_mean\": %.1f, \"collapse_ratio\": %.2f, "
                 "\"cost\": %.6f, \"max_violation\": %.3e, "
                 "\"peak_rss_mb\": %.1f}\n",
                 r.users, r.slots, r.seconds, r.classes_max, r.classes_mean,
                 r.collapse_ratio, r.cost, r.max_violation, r.peak_rss_mb);
  } else {
    std::fprintf(out, "  \"long_run\": null\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const eca::bench::BenchScale scale = eca::bench::read_scale();
  eca::bench::print_header(
      "scale", "user-class aggregation: per-user vs class-space sweep", scale);
  const ScalePerf perf = time_scale_sweep(scale);
  const eca::bench::EventsOverhead events =
      eca::bench::measure_default_events_overhead(scale);
  emit_json(scale, perf, events);
  return 0;
}
