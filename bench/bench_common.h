// Shared plumbing for the figure-reproduction binaries.
//
// Every binary reads its scale from ECA_* environment variables so the same
// build can run a CI-sized experiment or something closer to paper scale:
//   ECA_USERS (default 30)   users J
//   ECA_SLOTS (default 48)   slots T (paper: 60 one-minute slots)
//   ECA_REPS  (default 2)    repetitions per configuration
//   ECA_SEED  (default 1)    base seed
//   ECA_CSV   (default 0)    additionally dump CSV rows
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "algo/online_approx.h"
#include "check/harness.h"
#include "common/env.h"
#include "common/table.h"
#include "obs/events.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

// Build provenance, stamped by bench/CMakeLists.txt at configure time.
#ifndef ECA_GIT_SHA
#define ECA_GIT_SHA "unknown"
#endif
#ifndef ECA_BUILD_TYPE
#define ECA_BUILD_TYPE "unknown"
#endif

namespace eca::bench {

struct BenchScale {
  std::size_t users;
  std::size_t slots;
  int repetitions;
  std::uint64_t seed;
  bool csv;
};

// Exits with a clear message when a scale knob is nonsensical (0 users, 0
// slots, non-positive repetitions, negative seed) or does not parse as an
// integer at all: env_int()'s warn-and-fallback contract would otherwise
// run the DEFAULT experiment under a typo'd scale (ECA_SWEEP_MAX_USERS=8k)
// and report it as if the requested one had run.
inline std::int64_t read_positive_scale_knob(const char* name,
                                             std::int64_t fallback,
                                             std::int64_t minimum) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value < minimum) {
    std::fprintf(stderr,
                 "error: %s='%s' is invalid (must be an integer >= %lld; "
                 "unset it to use the default %lld)\n",
                 name, raw, static_cast<long long>(minimum),
                 static_cast<long long>(fallback));
    std::exit(2);
  }
  return value;
}

// Fail-fast validation of a threading knob: when `name` is set in the
// environment it must parse as an integer >= 1, otherwise the process exits
// with status 2. env_int()'s warn-and-fallback is the wrong contract here —
// a typo like ECA_SLOT_THREADS=eight or =0 would silently run the wrong
// experiment (serial where parallel was requested, or vice versa), and
// threading misconfiguration should be loud. Unset is fine: the defaults
// (ECA_THREADS: hardware concurrency, ECA_SLOT_THREADS: 1) apply.
inline void validate_thread_knob(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) {
    std::fprintf(stderr,
                 "error: %s='%s' is invalid (must be an integer >= 1; unset "
                 "it to use the default)\n",
                 name, value);
    std::exit(2);
  }
}

inline BenchScale read_scale() {
  validate_thread_knob("ECA_THREADS");
  validate_thread_knob("ECA_SLOT_THREADS");
  validate_thread_knob("ECA_LP_THREADS");
  validate_thread_knob("ECA_BASELINE_THREADS");
  // Same integer->=-1 contract as the thread knobs; failing here surfaces a
  // typo at startup instead of mid-sweep inside the solver.
  validate_thread_knob("ECA_SLOT_MIN_CHUNK");
  BenchScale scale;
  scale.users =
      static_cast<std::size_t>(read_positive_scale_knob("ECA_USERS", 30, 1));
  scale.slots =
      static_cast<std::size_t>(read_positive_scale_knob("ECA_SLOTS", 48, 1));
  scale.repetitions =
      static_cast<int>(read_positive_scale_knob("ECA_REPS", 2, 1));
  scale.seed =
      static_cast<std::uint64_t>(read_positive_scale_knob("ECA_SEED", 1, 0));
  scale.csv = env_bool("ECA_CSV", false);
  return scale;
}

// Price-calibration knobs (the paper fixes only *relative* price ratios, so
// the dynamic/static balance is a free parameter of the reproduction):
//   ECA_BW_SCALE    bandwidth price scale (default 0.4)
//   ECA_RECON_MEAN  mean reconfiguration price (default 1.0)
inline sim::ScenarioOptions scenario_from_scale(const BenchScale& scale) {
  sim::ScenarioOptions options;
  options.num_users = scale.users;
  options.num_slots = scale.slots;
  options.seed = scale.seed;
  options.bandwidth_price.scale =
      env_double("ECA_BW_SCALE", options.bandwidth_price.scale);
  options.reconfiguration_price.mean =
      env_double("ECA_RECON_MEAN", options.reconfiguration_price.mean);
  return options;
}

inline void print_header(const char* figure, const char* what,
                         const BenchScale& scale) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("scale: %zu users, %zu slots, %d repetitions, seed %llu\n",
              scale.users, scale.slots, scale.repetitions,
              static_cast<unsigned long long>(scale.seed));
}

// Formats "mean ± stddev".
inline std::string ratio_cell(const RunningStats& stats) {
  return Table::num(stats.mean(), 3) + " ± " + Table::num(stats.stddev(), 3);
}

inline void emit(const Table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::printf("--- csv ---\n");
    table.print_csv(std::cout);
  }
}

// Verification-gate provenance for the meta block: a tiny prop-harness
// smoke (a handful of seeded scenarios through the full differential
// oracle of DESIGN.md §13, no shrinking) run right before the BENCH JSON
// is written. Recording its timing and outcome in every BENCH_*.json ties
// a perf number to proof that the correctness gates actually ran on the
// same binary at commit time. ECA_BENCH_PROP_SMOKE=0 skips it (recorded
// as "skipped": perf_guard.py treats a recorded skip as informational,
// only an ok=false block fails the gate).
struct MetaChecks {
  bool ran = false;
  bool ok = false;
  int scenarios = 0;
  int failures = 0;
  double wall_seconds = 0.0;
};

inline MetaChecks run_meta_checks() {
  MetaChecks checks;
  if (!env_bool("ECA_BENCH_PROP_SMOKE", true)) return checks;
  check::HarnessOptions options;
  options.seed = 1;
  options.num_scenarios = 5;
  options.shrink_failures = false;  // provenance, not diagnosis: stay cheap
  const check::HarnessSummary summary = check::run_harness(options);
  checks.ran = true;
  checks.ok = summary.ok();
  checks.scenarios = summary.scenarios_run;
  checks.failures = summary.failures;
  checks.wall_seconds = summary.wall_seconds;
  std::printf("meta.checks: prop smoke %d scenarios, %d failures, %.3fs\n",
              checks.scenarios, checks.failures, checks.wall_seconds);
  return checks;
}

// Provenance meta block shared by every BENCH_*.json: git_sha and
// build_type are compile-time stamps, the UTC timestamp is taken at run
// time, and `checks` records the verification gates run against this very
// binary — together they make a BENCH trajectory joinable across commits
// AND auditable (a perf point whose prop smoke failed is not a perf
// point). Writes `"meta": {...},` (trailing comma: meant to lead an
// object body).
inline void write_meta_json(FILE* out) {
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  const MetaChecks checks = run_meta_checks();
  std::fprintf(out,
               "  \"meta\": {\"git_sha\": \"%s\", \"build_type\": \"%s\", "
               "\"timestamp_utc\": \"%s\",\n",
               ECA_GIT_SHA, ECA_BUILD_TYPE, stamp);
  if (checks.ran) {
    std::fprintf(out,
                 "    \"checks\": {\"prop_smoke\": {\"ok\": %s, "
                 "\"scenarios\": %d, \"failures\": %d, "
                 "\"wall_seconds\": %.6f}}},\n",
                 checks.ok ? "true" : "false", checks.scenarios,
                 checks.failures, checks.wall_seconds);
  } else {
    std::fprintf(out,
                 "    \"checks\": {\"prop_smoke\": {\"skipped\": true}}},\n");
  }
}

struct EventsOverhead {
  double seconds_off = 0.0;  // best-of-N wall time, event streaming off
  double seconds_on = 0.0;   // best-of-N wall time, buffer-only event log
};

// Measures the wall-time overhead of event recording on `workload` (a
// callable running one representative simulation): best-of-`rounds` with
// the global log dropped vs. installed buffer-only (large capacity, no file
// I/O — isolating record() cost from serialization). perf_guard.py gates
// the on/off ratio. Replaces any env-configured global event log; the
// benches own their process, so nothing of value is lost.
template <typename Fn>
EventsOverhead measure_events_overhead(Fn&& workload, int rounds = 3) {
  const auto best_of = [&](bool with_events) {
    double best = 0.0;
    for (int r = 0; r < rounds; ++r) {
      if (with_events) {
        obs::EventLogOptions options;  // path stays empty: buffer-only
        options.capacity = std::size_t{1} << 20;
        obs::install_global_events(options);
      } else {
        obs::drop_global_events();
      }
      const auto start = std::chrono::steady_clock::now();
      workload();
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (r == 0 || s < best) best = s;
    }
    return best;
  };
  EventsOverhead result;
  result.seconds_off = best_of(false);
  result.seconds_on = best_of(true);
  obs::drop_global_events();
  return result;
}

// Writes `"events_overhead": {...},` (trailing comma, like write_meta_json).
inline void write_events_overhead_json(FILE* out, const EventsOverhead& o) {
  std::fprintf(out,
               "  \"events_overhead\": {\"seconds_off\": %.6f, "
               "\"seconds_on\": %.6f},\n",
               o.seconds_off, o.seconds_on);
}

// Default events-overhead workload shared by the bench binaries: one
// online-approx simulation over a small instance — it exercises every event
// family the pipeline emits (run/workers lifecycle from the simulator,
// per-slot cost splits, decide-path solve events).
inline EventsOverhead measure_default_events_overhead(
    const BenchScale& scale) {
  sim::ScenarioOptions options = scenario_from_scale(scale);
  if (options.num_users > 12) options.num_users = 12;
  if (options.num_slots > 16) options.num_slots = 16;
  const model::Instance instance = sim::make_rome_taxi_instance(options, 0);
  const EventsOverhead overhead =
      measure_events_overhead([&instance] {
        algo::OnlineApprox algorithm;
        (void)sim::Simulator::run(instance, algorithm);
      });
  std::printf("events overhead: %.4fs off -> %.4fs on (%+.2f%%)\n",
              overhead.seconds_off, overhead.seconds_on,
              overhead.seconds_off > 0.0
                  ? 100.0 * (overhead.seconds_on / overhead.seconds_off - 1.0)
                  : 0.0);
  return overhead;
}

}  // namespace eca::bench
