// Shared plumbing for the figure-reproduction binaries.
//
// Every binary reads its scale from ECA_* environment variables so the same
// build can run a CI-sized experiment or something closer to paper scale:
//   ECA_USERS (default 30)   users J
//   ECA_SLOTS (default 48)   slots T (paper: 60 one-minute slots)
//   ECA_REPS  (default 2)    repetitions per configuration
//   ECA_SEED  (default 1)    base seed
//   ECA_CSV   (default 0)    additionally dump CSV rows
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/env.h"
#include "common/table.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace eca::bench {

struct BenchScale {
  std::size_t users;
  std::size_t slots;
  int repetitions;
  std::uint64_t seed;
  bool csv;
};

// Exits with a clear message when a scale knob is nonsensical (0 users, 0
// slots, non-positive repetitions, negative seed) or does not parse as an
// integer at all: env_int()'s warn-and-fallback contract would otherwise
// run the DEFAULT experiment under a typo'd scale (ECA_SWEEP_MAX_USERS=8k)
// and report it as if the requested one had run.
inline std::int64_t read_positive_scale_knob(const char* name,
                                             std::int64_t fallback,
                                             std::int64_t minimum) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value < minimum) {
    std::fprintf(stderr,
                 "error: %s='%s' is invalid (must be an integer >= %lld; "
                 "unset it to use the default %lld)\n",
                 name, raw, static_cast<long long>(minimum),
                 static_cast<long long>(fallback));
    std::exit(2);
  }
  return value;
}

// Fail-fast validation of a threading knob: when `name` is set in the
// environment it must parse as an integer >= 1, otherwise the process exits
// with status 2. env_int()'s warn-and-fallback is the wrong contract here —
// a typo like ECA_SLOT_THREADS=eight or =0 would silently run the wrong
// experiment (serial where parallel was requested, or vice versa), and
// threading misconfiguration should be loud. Unset is fine: the defaults
// (ECA_THREADS: hardware concurrency, ECA_SLOT_THREADS: 1) apply.
inline void validate_thread_knob(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) {
    std::fprintf(stderr,
                 "error: %s='%s' is invalid (must be an integer >= 1; unset "
                 "it to use the default)\n",
                 name, value);
    std::exit(2);
  }
}

inline BenchScale read_scale() {
  validate_thread_knob("ECA_THREADS");
  validate_thread_knob("ECA_SLOT_THREADS");
  validate_thread_knob("ECA_LP_THREADS");
  validate_thread_knob("ECA_BASELINE_THREADS");
  // Same integer->=-1 contract as the thread knobs; failing here surfaces a
  // typo at startup instead of mid-sweep inside the solver.
  validate_thread_knob("ECA_SLOT_MIN_CHUNK");
  BenchScale scale;
  scale.users =
      static_cast<std::size_t>(read_positive_scale_knob("ECA_USERS", 30, 1));
  scale.slots =
      static_cast<std::size_t>(read_positive_scale_knob("ECA_SLOTS", 48, 1));
  scale.repetitions =
      static_cast<int>(read_positive_scale_knob("ECA_REPS", 2, 1));
  scale.seed =
      static_cast<std::uint64_t>(read_positive_scale_knob("ECA_SEED", 1, 0));
  scale.csv = env_bool("ECA_CSV", false);
  return scale;
}

// Price-calibration knobs (the paper fixes only *relative* price ratios, so
// the dynamic/static balance is a free parameter of the reproduction):
//   ECA_BW_SCALE    bandwidth price scale (default 0.4)
//   ECA_RECON_MEAN  mean reconfiguration price (default 1.0)
inline sim::ScenarioOptions scenario_from_scale(const BenchScale& scale) {
  sim::ScenarioOptions options;
  options.num_users = scale.users;
  options.num_slots = scale.slots;
  options.seed = scale.seed;
  options.bandwidth_price.scale =
      env_double("ECA_BW_SCALE", options.bandwidth_price.scale);
  options.reconfiguration_price.mean =
      env_double("ECA_RECON_MEAN", options.reconfiguration_price.mean);
  return options;
}

inline void print_header(const char* figure, const char* what,
                         const BenchScale& scale) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("scale: %zu users, %zu slots, %d repetitions, seed %llu\n",
              scale.users, scale.slots, scale.repetitions,
              static_cast<unsigned long long>(scale.seed));
}

// Formats "mean ± stddev".
inline std::string ratio_cell(const RunningStats& stats) {
  return Table::num(stats.mean(), 3) + " ± " + Table::num(stats.stddev(), 3);
}

inline void emit(const Table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::printf("--- csv ---\n");
    table.print_csv(std::cout);
  }
}

}  // namespace eca::bench
