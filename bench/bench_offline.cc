// Offline-opt horizon LP benchmark: the parallel PDHG solve.
//
// Emits `BENCH_offline.json` (path override: ECA_BENCH_OFFLINE_JSON, schema
// eca.bench_offline.v1) so future PRs have numbers to regress against.
//
// Sweep: random-walk instances with I = 15 clouds, J doubling from 16 up to
// ECA_OFFLINE_MAX_USERS (default 64) over ECA_OFFLINE_SLOTS slots (default
// 24). Each point builds the full-horizon LP and solves it with PdhgLp
// under a fixed iteration budget (ECA_OFFLINE_MAX_ITERS, default 20000 —
// first-order convergence on these LPs has a long tail, and capping the
// budget makes every leg do an identical, comparable amount of work), once
// with 1 LP thread and once with N (ECA_LP_THREADS if set, else 8), and
// cross-checks the two runs bitwise — the partitioned solve is required to
// be bit-identical to serial. Points that the adaptive granularity floor
// (or the hardware-concurrency cap; this matters on small CI machines)
// collapses to one worker reuse the serial measurement verbatim
// (pool_engaged=false, speedup 1.0): the N-thread leg would time the
// byte-identical serial path.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/offline.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "solve/pdhg_lp.h"

namespace {

using namespace eca;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct OfflinePoint {
  std::size_t users = 0;
  std::size_t slots = 0;
  std::size_t rows = 0;
  std::size_t vars = 0;
  std::size_t nnz = 0;
  double seconds_1_thread = 0.0;
  double seconds_n_threads = 0.0;
  double speedup = 0.0;
  bool pool_engaged = false;
  int iterations = 0;
  double objective = 0.0;
  const char* status = "";
  bool bit_identical = false;
};

struct OfflinePerf {
  std::size_t clouds = 15;
  std::size_t threads = 0;
  int max_iterations = 0;
  double tolerance = 0.0;
  std::vector<OfflinePoint> points;
};

struct Leg {
  solve::LpSolution sol;
  double seconds = 0.0;
};

Leg solve_leg(const solve::LpProblem& lp, int lp_threads,
              const OfflinePerf& perf) {
  solve::PdhgOptions options;
  options.tolerance = perf.tolerance;
  options.max_iterations = perf.max_iterations;
  // Offline-denominator setting (see solve_offline): the primal objective
  // is what matters, don't wait for the slow dual certificate.
  options.gate_on_dual_residual = false;
  options.lp_threads = lp_threads;
  Leg leg;
  const auto start = std::chrono::steady_clock::now();
  leg.sol = solve::PdhgLp(options).solve(lp);
  leg.seconds = seconds_since(start);
  return leg;
}

OfflinePerf time_offline_sweep(const bench::BenchScale& scale) {
  OfflinePerf perf;
  const auto max_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_OFFLINE_MAX_USERS", 64, 1));
  const auto slots = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_OFFLINE_SLOTS", 24, 1));
  perf.max_iterations = static_cast<int>(
      bench::read_positive_scale_knob("ECA_OFFLINE_MAX_ITERS", 20000, 1));
  perf.tolerance = 5e-4;  // OfflineOptions::pdhg_tolerance
  // N-thread leg: honor an explicit ECA_LP_THREADS, else a reference point
  // of 8 LP threads.
  perf.threads = ThreadPool::resolve_lp_threads(0);
  if (perf.threads == 1) perf.threads = 8;
  for (std::size_t users = 16; users <= max_users; users *= 2) {
    sim::ScenarioOptions options = bench::scenario_from_scale(scale);
    options.num_users = users;
    options.num_slots = slots;
    options.seed = scale.seed + users;
    const model::Instance instance = sim::make_random_walk_instance(options);
    const solve::LpProblem lp = algo::build_offline_lp(instance);

    OfflinePoint point;
    point.users = users;
    point.slots = slots;
    point.rows = lp.num_rows;
    point.vars = lp.num_vars;
    point.nnz = lp.elements.size();

    const Leg serial = solve_leg(lp, 1, perf);
    point.seconds_1_thread = serial.seconds;
    point.iterations = serial.sol.iterations;
    point.objective = serial.sol.objective_value;
    point.status = solve::to_string(serial.sol.status);

    // Mirror the solver's own adaptive resolution (nonzeros-per-worker
    // floor + hardware cap) to decide whether the N-thread leg would
    // actually engage the pool.
    const std::size_t effective = ThreadPool::resolve_lp_threads(
        static_cast<int>(perf.threads), point.nnz, 32768);
    point.pool_engaged = effective > 1;
    if (point.pool_engaged) {
      const Leg parallel = solve_leg(lp, static_cast<int>(perf.threads), perf);
      point.seconds_n_threads = parallel.seconds;
      point.speedup = parallel.seconds > 0.0
                          ? serial.seconds / parallel.seconds
                          : 0.0;
      point.bit_identical =
          serial.sol.iterations == parallel.sol.iterations &&
          serial.sol.objective_value == parallel.sol.objective_value &&
          serial.sol.x == parallel.sol.x &&
          serial.sol.row_duals == parallel.sol.row_duals;
    } else {
      point.seconds_n_threads = point.seconds_1_thread;
      point.speedup = 1.0;
      point.bit_identical = true;
    }
    perf.points.push_back(point);
    std::printf(
        "offline J=%4zu T=%zu (%zu rows, %zu nnz): %.3fs (1 thr) -> %.3fs "
        "(%zu thr, pool=%s), %.2fx, %d iters (%s), bit_identical=%s\n",
        users, slots, point.rows, point.nnz, point.seconds_1_thread,
        point.seconds_n_threads, perf.threads,
        point.pool_engaged ? "on" : "off", point.speedup, point.iterations,
        point.status, point.bit_identical ? "true" : "false");
  }
  return perf;
}

void emit_json(const bench::BenchScale& scale, const OfflinePerf& perf,
               const bench::EventsOverhead& events) {
  const std::string path =
      env_string("ECA_BENCH_OFFLINE_JSON", "BENCH_offline.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"eca.bench_offline.v1\",\n");
  bench::write_meta_json(out);
  bench::write_events_overhead_json(out, events);
  std::fprintf(out,
               "  \"scale\": {\"users\": %zu, \"slots\": %zu, "
               "\"repetitions\": %d, \"seed\": %llu},\n",
               scale.users, scale.slots, scale.repetitions,
               static_cast<unsigned long long>(scale.seed));
  std::fprintf(out, "  \"clouds\": %zu,\n", perf.clouds);
  std::fprintf(out, "  \"threads\": %zu,\n", perf.threads);
  std::fprintf(out, "  \"max_iterations\": %d,\n", perf.max_iterations);
  std::fprintf(out, "  \"tolerance\": %g,\n", perf.tolerance);
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < perf.points.size(); ++i) {
    const OfflinePoint& p = perf.points[i];
    std::fprintf(out,
                 "    {\"users\": %zu, \"slots\": %zu, \"rows\": %zu, "
                 "\"vars\": %zu, \"nnz\": %zu, "
                 "\"seconds_1_thread\": %.4f, \"seconds_n_threads\": %.4f, "
                 "\"speedup\": %.3f, \"pool_engaged\": %s, "
                 "\"iterations\": %d, \"objective\": %.6f, "
                 "\"status\": \"%s\", \"bit_identical\": %s}%s\n",
                 p.users, p.slots, p.rows, p.vars, p.nnz, p.seconds_1_thread,
                 p.seconds_n_threads, p.speedup,
                 p.pool_engaged ? "true" : "false", p.iterations, p.objective,
                 p.status, p.bit_identical ? "true" : "false",
                 i + 1 < perf.points.size() ? "," : "");
  }
  std::fprintf(out, "  ]%s\n", obs::metrics_enabled() ? "," : "");
  // Optional solver-telemetry block (absent with ECA_METRICS=off):
  // process-lifetime lp.pdhg_* registry totals over every solve above.
  if (obs::metrics_enabled()) {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    std::fprintf(
        out,
        "  \"telemetry\": {\"pdhg_solves\": %llu, "
        "\"pdhg_iterations\": %llu, \"pdhg_restarts\": %llu, "
        "\"pdhg_seconds\": %.6f, \"pdhg_scale_seconds\": %.6f, "
        "\"pdhg_kernel_seconds\": %.6f, \"pdhg_kkt_seconds\": %.6f}\n",
        static_cast<unsigned long long>(snap.counter("lp.pdhg_solves")),
        static_cast<unsigned long long>(snap.counter("lp.pdhg_iterations")),
        static_cast<unsigned long long>(snap.counter("lp.pdhg_restarts")),
        snap.double_counter("lp.pdhg_seconds"),
        snap.double_counter("lp.pdhg_scale_seconds"),
        snap.double_counter("lp.pdhg_kernel_seconds"),
        snap.double_counter("lp.pdhg_kkt_seconds"));
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const eca::bench::BenchScale scale = eca::bench::read_scale();
  eca::bench::print_header("offline", "parallel PDHG horizon-LP sweep",
                           scale);
  const OfflinePerf perf = time_offline_sweep(scale);
  const eca::bench::EventsOverhead events =
      eca::bench::measure_default_events_overhead(scale);
  emit_json(scale, perf, events);
  return 0;
}
