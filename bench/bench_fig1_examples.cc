// Figure 1 (Section II-E): the two didactic examples showing that the
// natural online greedy is (a) too aggressive and (b) too conservative.
// Reproduces the paper's exact cost arithmetic and contrasts it with the
// LP offline optimum and the paper's online algorithm.
#include <cstdio>
#include <iostream>

#include "algo/baselines.h"
#include "algo/offline.h"
#include "algo/online_approx.h"
#include "common/table.h"
#include "sim/paper_examples.h"
#include "sim/simulator.h"

namespace {

using namespace eca;

void run_example(const char* label, const model::Instance& instance,
                 double paper_greedy, double paper_optimal) {
  const double provisioning = sim::figure1_initial_dynamic_cost();

  algo::OnlineGreedy greedy;
  const double greedy_cost =
      sim::Simulator::run(instance, greedy).weighted_total;

  algo::OnlineApproxOptions approx_options;
  approx_options.eps1 = 0.1;  // small smoothing for this tiny example
  approx_options.eps2 = 0.1;
  algo::OnlineApprox approx(approx_options);
  const double approx_cost =
      sim::Simulator::run(instance, approx).weighted_total;

  const algo::OfflineResult offline = algo::solve_offline(instance);
  const double offline_cost =
      sim::Simulator::score(instance, "offline", offline.allocations)
          .weighted_total;

  Table table({"strategy", "total cost", "minus provisioning",
               "paper reports"});
  table.add_row({"online-greedy", Table::num(greedy_cost, 3),
                 Table::num(greedy_cost - provisioning, 3),
                 Table::num(paper_greedy, 1)});
  table.add_row({"offline-opt (LP)", Table::num(offline_cost, 3),
                 Table::num(offline_cost - provisioning, 3),
                 Table::num(paper_optimal, 1)});
  table.add_row({"online-approx", Table::num(approx_cost, 3),
                 Table::num(approx_cost - provisioning, 3), "-"});
  std::printf("--- %s ---\n", label);
  table.print(std::cout);
}

}  // namespace

int main() {
  std::printf("=== Figure 1: greedy pathologies on two-cloud examples ===\n");
  std::printf(
      "(totals include the slot-1 provisioning cost of %.1f, which the\n"
      " paper's arithmetic omits; the third column removes it)\n\n",
      eca::sim::figure1_initial_dynamic_cost());
  run_example("(a) greedy is too aggressive (delay 2.1, path A-B-A)",
              eca::sim::figure1a_instance(), eca::sim::kFigure1aGreedyCost,
              eca::sim::kFigure1aOptimalCost);
  std::printf("\n");
  run_example("(b) greedy is too conservative (delay 1.9, path A-B-B)",
              eca::sim::figure1b_instance(), eca::sim::kFigure1bGreedyCost,
              eca::sim::kFigure1bOptimalCost);
  std::printf(
      "\nnote: in (b) the LP optimum (%.1f before provisioning) beats the\n"
      "paper's narrated optimum (%.1f) by pre-provisioning at B in slot 1 —\n"
      "the paper's arithmetic does not charge initial provisioning.\n",
      eca::sim::kFigure1bTrueOptimalCost, eca::sim::kFigure1bOptimalCost);
  return 0;
}
