// Figure 4 (Section V-C): sensitivity of online-approx to
//  (a) the regularization parameter ε = ε1 = ε2, swept 1e-3..1e3, and
//  (b) the dynamic/static weight ratio μ, swept 1e-3..1e3.
// The paper observes: the empirical ratio dips slightly, then rises to a
// stable level as ε grows; for small μ the algorithm is near-optimal, for
// large μ it remains stable and reasonable. We also print Theorem 2's
// theoretical bound r = 1 + γ|I| next to each ε.
#include <cstdio>
#include <iostream>

#include <memory>

#include "algo/baselines.h"
#include "algo/online_approx.h"
#include "bench_common.h"
#include "model/costs.h"

int main() {
  using namespace eca;
  using namespace eca::bench;

  const BenchScale scale = read_scale();
  print_header("Figure 4", "impact of epsilon and mu", scale);

  const std::vector<double> sweep = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3};

  // --- (a) epsilon sweep: the instance (and thus the offline optimum) is
  // fixed per repetition; only the online algorithm changes. -------------
  {
    Table table({"epsilon", "online-approx ratio", "theoretical bound r"});
    std::vector<RunningStats> ratios(sweep.size());
    std::string bound_text;
    for (int rep = 0; rep < scale.repetitions; ++rep) {
      sim::ScenarioOptions options = scenario_from_scale(scale);
      options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
      const model::Instance instance =
          sim::make_rome_taxi_instance(options, rep % 6);
      const algo::OfflineResult offline = algo::solve_offline(instance);
      const double denominator =
          sim::Simulator::score(instance, "offline", offline.allocations)
              .weighted_total;
      for (std::size_t e = 0; e < sweep.size(); ++e) {
        algo::OnlineApproxOptions approx_options;
        approx_options.eps1 = sweep[e];
        approx_options.eps2 = sweep[e];
        algo::OnlineApprox approx(approx_options);
        const double cost =
            sim::Simulator::run(instance, approx).weighted_total;
        ratios[e].add(cost / denominator);
      }
    }
    // The bound only depends on capacities; report it for the last rep.
    sim::ScenarioOptions options = scenario_from_scale(scale);
    const model::Instance bound_instance =
        sim::make_rome_taxi_instance(options, 0);
    for (std::size_t e = 0; e < sweep.size(); ++e) {
      table.add_row({Table::num(sweep[e], 3), ratio_cell(ratios[e]),
                     Table::num(model::competitive_ratio_bound(
                                    bound_instance, sweep[e], sweep[e]),
                                1)});
    }
    std::printf("--- (a) epsilon sweep ---\n");
    emit(table, scale.csv);
  }

  // --- (b) mu sweep: weights enter the objective, so the offline optimum
  // is re-solved per mu. ---------------------------------------------------
  {
    Table table({"mu", "online-approx ratio", "online-greedy ratio"});
    for (double mu : sweep) {
      sim::ExperimentOptions experiment;
      experiment.repetitions = std::max(1, scale.repetitions - 1);
      const sim::ExperimentResult result = sim::run_experiment(
          [&](int rep) {
            sim::ScenarioOptions options = scenario_from_scale(scale);
            options.mu = mu;
            options.seed =
                scale.seed + 1000 * static_cast<std::uint64_t>(rep);
            return sim::make_rome_taxi_instance(options, rep % 6);
          },
          {{"online-greedy",
            [] { return std::make_unique<algo::OnlineGreedy>(); }},
           {"online-approx",
            [] { return std::make_unique<algo::OnlineApprox>(); }}},
          experiment);
      table.add_row({Table::num(mu, 3),
                     ratio_cell(result.find("online-approx")->ratio),
                     ratio_cell(result.find("online-greedy")->ratio)});
    }
    std::printf("--- (b) mu sweep ---\n");
    emit(table, scale.csv);
  }
  std::printf(
      "\nexpected shape: (a) slight dip then stable level as epsilon grows;\n"
      "(b) near-optimal for small mu, stable and reasonable for large mu.\n");
  return 0;
}
