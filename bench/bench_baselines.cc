// Baseline-evaluation benchmark: cached LP skeletons, warm-started IPM and
// the simulator's slot fan-out.
//
// Emits `BENCH_baselines.json` (path override: ECA_BENCH_BASELINES_JSON,
// schema eca.bench_baselines.v1) so future PRs have numbers to regress
// against.
//
// Sweep: random-walk instances with the default 15 clouds, J doubling from
// 16 up to ECA_BASELINE_MAX_USERS (default 64) over ECA_BASELINE_SLOTS
// slots (default 24). Each (algorithm, J) point runs three legs:
//
//   1. rebuild+cold    — BaselineOptions{reuse_skeleton=false}: from-scratch
//                        LP build and a cold IPM solve per slot (the legacy
//                        path, and the reference the perf gate holds the
//                        optimized path against);
//   2. skeleton+warm   — each algorithm's default path, serial: skeleton
//                        refresh + workspace-reused IPM, block-chain warm
//                        starts where the algorithm enables them
//                        (warm_enabled per point; online-greedy defaults
//                        warm off — its feasible set changes every slot —
//                        and the warm_max_users cap turns hints off at
//                        scale, where they cost iterations);
//   3. N-thread        — leg 2 dispatched over the simulator's slot fan-out
//                        (slot-separable algorithms only), cross-checked
//                        bitwise against leg 2.
//
// Wall-clock on shared/virtualized CI hosts is ±10% noisy, so each point
// also records the per-leg ipm.iterations delta (exact with ECA_METRICS=on)
// and the perf guard keys its warm-vs-cold gate on that ratio.
//
// Points that the work-volume floor or the hardware-concurrency cap (this
// matters on small CI machines) collapse to one worker reuse the serial
// measurement verbatim (pool_engaged=false, speedup 1.0): the N-thread leg
// would time the byte-identical serial path. Warm starts move the solver
// trajectory, not the optimum, so legs 1 and 2 agree on cost only up to
// solver tolerance; the relative drift is recorded per point and gated.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace {

using namespace eca;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct BaselinePoint {
  const char* algorithm = "";
  bool separable = false;
  bool warm_enabled = false;
  std::size_t users = 0;
  std::size_t slots = 0;
  double seconds_rebuild_cold = 0.0;
  double seconds_skeleton_warm = 0.0;
  double warm_speedup = 0.0;  // rebuild+cold / skeleton+warm
  // Total IPM iterations per leg (ipm.iterations counter delta; 0 with
  // ECA_METRICS=off). Deterministic, unlike wall-clock on noisy hosts —
  // the perf guard's warm-vs-cold gate keys on these.
  std::uint64_t iters_rebuild_cold = 0;
  std::uint64_t iters_skeleton_warm = 0;
  double warm_iter_ratio = 0.0;  // skeleton+warm / rebuild+cold iterations
  double seconds_n_threads = 0.0;
  double speedup = 0.0;  // skeleton+warm serial / N-thread
  bool pool_engaged = false;
  bool bit_identical = false;
  double cost_drift = 0.0;  // |warm - cold| / (1 + |cold|)
  double weighted_total = 0.0;
  double max_violation = 0.0;
};

struct BaselinePerf {
  std::size_t clouds = 0;
  std::size_t threads = 0;
  std::vector<BaselinePoint> points;
};

struct AlgoEntry {
  const char* name;
  bool separable;
  // Whether the algorithm's DEFAULT path chains warm starts (the gate only
  // requires warm_speedup > 1 where warm starts are actually on).
  bool warm_enabled;
  // Legacy (rebuild+cold) construction for leg 1.
  std::function<algo::AlgorithmPtr()> make_legacy;
  // Default construction for legs 2 and 3 — each algorithm's own
  // BaselineOptions default, NOT a bench-side override.
  std::function<algo::AlgorithmPtr()> make_default;
};

std::vector<AlgoEntry> roster() {
  const algo::BaselineOptions legacy{.reuse_skeleton = false,
                                     .warm_start = false};
  return {
      {"perf-opt", true, true,
       [legacy] { return std::make_unique<algo::PerfOpt>(legacy); },
       [] { return std::make_unique<algo::PerfOpt>(); }},
      {"oper-opt", true, true,
       [legacy] { return std::make_unique<algo::OperOpt>(legacy); },
       [] { return std::make_unique<algo::OperOpt>(); }},
      {"stat-opt", true, true,
       [legacy] { return std::make_unique<algo::StatOpt>(legacy); },
       [] { return std::make_unique<algo::StatOpt>(); }},
      {"static-once", true, false,
       [] { return std::make_unique<algo::StaticOnce>(); },
       [] { return std::make_unique<algo::StaticOnce>(); }},
      {"online-greedy", false, false,
       [legacy] { return std::make_unique<algo::OnlineGreedy>(legacy); },
       [] { return std::make_unique<algo::OnlineGreedy>(); }},
  };
}

struct Leg {
  sim::SimulationResult result;
  double seconds = 0.0;
  std::uint64_t ipm_iterations = 0;
};

std::uint64_t ipm_iterations_now() {
  if (!obs::metrics_enabled()) return 0;
  return obs::MetricsRegistry::global().snapshot().counter("ipm.iterations");
}

Leg run_leg(const model::Instance& instance, algo::OnlineAlgorithm& algorithm,
            const sim::SimulatorOptions& options) {
  Leg leg;
  const std::uint64_t iters_before = ipm_iterations_now();
  const auto start = std::chrono::steady_clock::now();
  leg.result = sim::Simulator::run(instance, algorithm, options);
  leg.seconds = seconds_since(start);
  leg.ipm_iterations = ipm_iterations_now() - iters_before;
  return leg;
}

bool runs_bitwise_equal(const sim::SimulationResult& a,
                        const sim::SimulationResult& b) {
  if (a.allocations.size() != b.allocations.size()) return false;
  for (std::size_t t = 0; t < a.allocations.size(); ++t) {
    if (a.allocations[t].x != b.allocations[t].x) return false;
  }
  return a.weighted_total == b.weighted_total && a.per_slot == b.per_slot;
}

BaselinePerf time_baseline_sweep(const bench::BenchScale& scale) {
  BaselinePerf perf;
  const auto max_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_BASELINE_MAX_USERS", 64, 1));
  const auto slots = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_BASELINE_SLOTS", 24, 1));
  // N-thread leg: honor an explicit ECA_BASELINE_THREADS, else a reference
  // point of 8 workers.
  perf.threads = ThreadPool::resolve_baseline_threads(0);
  if (perf.threads == 1) perf.threads = 8;

  for (std::size_t users = 16; users <= max_users; users *= 2) {
    sim::ScenarioOptions options = bench::scenario_from_scale(scale);
    options.num_users = users;
    options.num_slots = slots;
    options.seed = scale.seed + users;
    const model::Instance instance = sim::make_random_walk_instance(options);
    perf.clouds = instance.num_clouds;

    for (const AlgoEntry& entry : roster()) {
      BaselinePoint point;
      point.algorithm = entry.name;
      point.separable = entry.separable;
      // Warm starts engage only under the size cap (see
      // BaselineOptions::warm_max_users — hints stop paying at scale).
      point.warm_enabled =
          entry.warm_enabled && users <= algo::BaselineOptions{}.warm_max_users;
      point.users = users;
      point.slots = slots;

      sim::SimulatorOptions serial;
      serial.baseline_threads = 1;

      auto cold_algorithm = entry.make_legacy();
      const Leg cold = run_leg(instance, *cold_algorithm, serial);
      point.seconds_rebuild_cold = cold.seconds;

      auto warm_algorithm = entry.make_default();
      const Leg warm = run_leg(instance, *warm_algorithm, serial);
      point.seconds_skeleton_warm = warm.seconds;
      point.warm_speedup =
          warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
      point.iters_rebuild_cold = cold.ipm_iterations;
      point.iters_skeleton_warm = warm.ipm_iterations;
      point.warm_iter_ratio =
          cold.ipm_iterations > 0
              ? static_cast<double>(warm.ipm_iterations) /
                    static_cast<double>(cold.ipm_iterations)
              : 0.0;
      point.weighted_total = warm.result.weighted_total;
      point.max_violation = warm.result.max_violation;
      point.cost_drift =
          std::fabs(warm.result.weighted_total - cold.result.weighted_total) /
          (1.0 + std::fabs(cold.result.weighted_total));

      // Mirror the simulator's own resolution (work-volume floor +
      // hardware cap) to decide whether the N-thread leg would actually
      // engage the pool.
      const std::size_t work =
          slots * instance.num_clouds * instance.num_users;
      const std::size_t effective = ThreadPool::resolve_baseline_threads(
          static_cast<int>(perf.threads), work,
          ThreadPool::kDefaultBaselineMinWork);
      point.pool_engaged = entry.separable && effective > 1 && slots > 1;
      if (point.pool_engaged) {
        sim::SimulatorOptions fanout;
        fanout.baseline_threads = static_cast<int>(perf.threads);
        auto parallel_algorithm = entry.make_default();
        const Leg parallel = run_leg(instance, *parallel_algorithm, fanout);
        point.seconds_n_threads = parallel.seconds;
        point.speedup =
            parallel.seconds > 0.0 ? warm.seconds / parallel.seconds : 0.0;
        point.bit_identical = runs_bitwise_equal(warm.result, parallel.result);
      } else {
        point.seconds_n_threads = point.seconds_skeleton_warm;
        point.speedup = 1.0;
        point.bit_identical = true;
      }
      perf.points.push_back(point);
      std::printf(
          "baseline %-13s J=%4zu T=%zu: %.3fs (rebuild+cold) -> %.3fs "
          "(%s, %.2fx, iters %llu->%llu) -> %.3fs (%zu thr, pool=%s, "
          "%.2fx), bit_identical=%s drift=%.2e\n",
          entry.name, users, slots, point.seconds_rebuild_cold,
          point.seconds_skeleton_warm,
          point.warm_enabled ? "skeleton+warm" : "skeleton",
          point.warm_speedup,
          static_cast<unsigned long long>(point.iters_rebuild_cold),
          static_cast<unsigned long long>(point.iters_skeleton_warm),
          point.seconds_n_threads, perf.threads,
          point.pool_engaged ? "on" : "off", point.speedup,
          point.bit_identical ? "true" : "false", point.cost_drift);
    }
  }
  return perf;
}

void emit_json(const bench::BenchScale& scale, const BaselinePerf& perf,
               const bench::EventsOverhead& events) {
  const std::string path =
      env_string("ECA_BENCH_BASELINES_JSON", "BENCH_baselines.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"eca.bench_baselines.v1\",\n");
  bench::write_meta_json(out);
  bench::write_events_overhead_json(out, events);
  std::fprintf(out,
               "  \"scale\": {\"users\": %zu, \"slots\": %zu, "
               "\"repetitions\": %d, \"seed\": %llu},\n",
               scale.users, scale.slots, scale.repetitions,
               static_cast<unsigned long long>(scale.seed));
  std::fprintf(out, "  \"clouds\": %zu,\n", perf.clouds);
  std::fprintf(out, "  \"threads\": %zu,\n", perf.threads);
  std::fprintf(out, "  \"warm_block\": %zu,\n", algo::kBaselineWarmBlock);
  std::fprintf(out, "  \"warm_max_users\": %zu,\n",
               algo::BaselineOptions{}.warm_max_users);
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < perf.points.size(); ++i) {
    const BaselinePoint& p = perf.points[i];
    std::fprintf(
        out,
        "    {\"algorithm\": \"%s\", \"separable\": %s, "
        "\"warm_enabled\": %s, \"users\": %zu, "
        "\"slots\": %zu, \"seconds_rebuild_cold\": %.4f, "
        "\"seconds_skeleton_warm\": %.4f, \"warm_speedup\": %.3f, "
        "\"iters_rebuild_cold\": %llu, \"iters_skeleton_warm\": %llu, "
        "\"warm_iter_ratio\": %.4f, "
        "\"seconds_n_threads\": %.4f, \"speedup\": %.3f, "
        "\"pool_engaged\": %s, \"bit_identical\": %s, "
        "\"cost_drift\": %.3e, \"weighted_total\": %.6f, "
        "\"max_violation\": %.3e}%s\n",
        p.algorithm, p.separable ? "true" : "false",
        p.warm_enabled ? "true" : "false", p.users, p.slots,
        p.seconds_rebuild_cold, p.seconds_skeleton_warm, p.warm_speedup,
        static_cast<unsigned long long>(p.iters_rebuild_cold),
        static_cast<unsigned long long>(p.iters_skeleton_warm),
        p.warm_iter_ratio, p.seconds_n_threads, p.speedup,
        p.pool_engaged ? "true" : "false",
        p.bit_identical ? "true" : "false", p.cost_drift, p.weighted_total,
        p.max_violation, i + 1 < perf.points.size() ? "," : "");
  }
  std::fprintf(out, "  ]%s\n", obs::metrics_enabled() ? "," : "");
  // Optional solver-telemetry block (absent with ECA_METRICS=off):
  // process-lifetime baseline.* / ipm.* registry totals over all legs.
  if (obs::metrics_enabled()) {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    std::fprintf(
        out,
        "  \"telemetry\": {\"lp_solves\": %llu, \"lp_failures\": %llu, "
        "\"warm_chained\": %llu, \"anchor_restarts\": %llu, "
        "\"ipm_solves\": %llu, \"ipm_iterations\": %llu, "
        "\"ipm_warm_accepted\": %llu, \"ipm_warm_fallbacks\": %llu}\n",
        static_cast<unsigned long long>(snap.counter("baseline.lp_solves")),
        static_cast<unsigned long long>(snap.counter("baseline.lp_failures")),
        static_cast<unsigned long long>(
            snap.counter("baseline.warm_chained")),
        static_cast<unsigned long long>(
            snap.counter("baseline.anchor_restarts")),
        static_cast<unsigned long long>(snap.counter("ipm.solves")),
        static_cast<unsigned long long>(snap.counter("ipm.iterations")),
        static_cast<unsigned long long>(snap.counter("ipm.warm_accepted")),
        static_cast<unsigned long long>(
            snap.counter("ipm.warm_fallbacks")));
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const eca::bench::BenchScale scale = eca::bench::read_scale();
  eca::bench::print_header("baselines",
                           "cached-skeleton / warm-start / slot fan-out sweep",
                           scale);
  const BaselinePerf perf = time_baseline_sweep(scale);
  const eca::bench::EventsOverhead events =
      eca::bench::measure_default_events_overhead(scale);
  emit_json(scale, perf, events);
  return 0;
}
