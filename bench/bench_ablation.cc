// Ablation (ours, see DESIGN.md §6): which parts of the regularized
// subproblem P2 actually matter?
//  * full            — both regularizers (the paper's algorithm)
//  * no-recon        — drop the aggregate reconfiguration regularizer
//  * no-migration    — drop the per-user migration regularizer
//  * none            — drop both (degenerates to per-slot static optimum)
//  * paper-pure      — full, but without the explicit capacity rows our
//                      implementation adds (Theorem 1 discussion).
#include <cstdio>
#include <iostream>
#include <memory>

#include "algo/online_approx.h"
#include "bench_common.h"

int main() {
  using namespace eca;
  using namespace eca::bench;

  const BenchScale scale = read_scale();
  print_header("Ablation", "P2 regularizer components", scale);

  struct Variant {
    const char* name;
    bool recon;
    bool migration;
    bool enforce_capacity;
  };
  const Variant variants[] = {
      {"full", true, true, true},
      {"no-recon", false, true, true},
      {"no-migration", true, false, true},
      {"none", false, false, true},
      {"paper-pure", true, true, false},
  };

  std::vector<sim::NamedFactory> factories;
  for (const Variant& v : variants) {
    factories.push_back({v.name, [v] {
                           algo::OnlineApproxOptions options;
                           options.use_reconfiguration_regularizer = v.recon;
                           options.use_migration_regularizer = v.migration;
                           options.enforce_capacity = v.enforce_capacity;
                           return std::make_unique<algo::OnlineApprox>(
                               options);
                         }});
  }

  sim::ExperimentOptions experiment;
  experiment.repetitions = scale.repetitions;
  const sim::ExperimentResult result = sim::run_experiment(
      [&](int rep) {
        sim::ScenarioOptions options = scenario_from_scale(scale);
        options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
        return sim::make_rome_taxi_instance(options, rep % 6);
      },
      factories, experiment);

  Table table({"variant", "ratio", "max constraint violation"});
  for (const auto& summary : result.algorithms) {
    table.add_row({summary.name, ratio_cell(summary.ratio),
                   Table::num(summary.worst_violation, 6)});
  }
  emit(table, scale.csv);
  std::printf(
      "\nexpected: 'full' best; dropping either regularizer hurts; 'none'\n"
      "behaves like stat-opt; 'paper-pure' may overshoot capacity slightly\n"
      "(nonzero violation column) — the reason enforce_capacity defaults "
      "on.\n");
  return 0;
}
