// Solver microbenchmarks (google-benchmark): scaling of the three solvers
// that replace IPOPT/GLPK in this reproduction —
//  * InteriorPointLp on random dense-ish LPs,
//  * PdhgLp on the same family,
//  * RegularizedSolver (the P2 primal-dual method) on growing I x J, which
//    bounds the per-slot latency of the online algorithm.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "solve/ipm_lp.h"
#include "solve/pdhg_lp.h"
#include "solve/regularized_solver.h"

namespace {

using namespace eca;
using namespace eca::solve;

LpProblem random_lp(Rng& rng, std::size_t n, std::size_t m) {
  LpProblem lp;
  linalg::Vec x0(n);
  for (std::size_t j = 0; j < n; ++j) {
    x0[j] = rng.uniform(0.2, 2.0);
    lp.add_variable(rng.uniform(0.1, 2.0), 0.0, x0[j] + rng.uniform(0.5, 2.0));
  }
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    const auto row = lp.add_row(0.0, kInf);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < 0.3) {
        const double a = rng.uniform(0.1, 1.5);
        lp.set_coefficient(row, j, a);
        activity += a * x0[j];
      }
    }
    lp.row_lower[row] = activity - rng.uniform(0.05, 0.5);
  }
  return lp;
}

RegularizedProblem random_p2(Rng& rng, std::size_t clouds,
                             std::size_t users) {
  RegularizedProblem p;
  p.num_clouds = clouds;
  p.num_users = users;
  p.demand.resize(users);
  for (auto& d : p.demand) d = static_cast<double>(rng.uniform_int(1, 5));
  const double total = linalg::sum(p.demand);
  p.capacity.assign(clouds, 1.25 * total / static_cast<double>(clouds));
  p.linear_cost.resize(clouds * users);
  for (auto& v : p.linear_cost) v = rng.uniform(0.5, 3.0);
  p.recon_price.assign(clouds, 1.0);
  p.migration_price.assign(clouds, 1.0);
  p.prev.assign(clouds * users, 0.0);
  for (std::size_t j = 0; j < users; ++j) {
    p.prev[p.index(rng.uniform_index(clouds), j)] = p.demand[j];
  }
  return p;
}

void BM_InteriorPointLp(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const LpProblem lp = random_lp(rng, n, n / 2);
  for (auto _ : state) {
    const LpSolution sol = InteriorPointLp().solve(lp);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
BENCHMARK(BM_InteriorPointLp)->Arg(50)->Arg(200)->Arg(800);

void BM_PdhgLp(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const LpProblem lp = random_lp(rng, n, n / 2);
  PdhgOptions options;
  options.tolerance = 1e-5;
  for (auto _ : state) {
    const LpSolution sol = PdhgLp(options).solve(lp);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
BENCHMARK(BM_PdhgLp)->Arg(50)->Arg(200)->Arg(800);

void BM_RegularizedSolver(benchmark::State& state) {
  Rng rng(42);
  const auto users = static_cast<std::size_t>(state.range(0));
  const RegularizedProblem p = random_p2(rng, 15, users);
  for (auto _ : state) {
    const RegularizedSolution sol = RegularizedSolver().solve(p);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
// 15 clouds as in the paper; users span CI to paper scale (~300).
BENCHMARK(BM_RegularizedSolver)->Arg(30)->Arg(100)->Arg(300);

}  // namespace

BENCHMARK_MAIN();
