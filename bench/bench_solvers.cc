// Solver microbenchmarks + the repo's performance trajectory harness.
//
// Always runs a timing pass and emits `BENCH_solvers.json` (path override:
// ECA_BENCH_JSON, schema eca.bench_solvers.v3) so future PRs have numbers
// to regress against:
//  * Newton hot path — a slot sequence of P2 solves with a reused
//    NewtonWorkspace (the OnlineApprox inner loop): slots/sec, Newton
//    iterations, ns per Newton iteration.
//  * Experiment runner — run_experiment at the ECA_* default scale with 1
//    thread vs ECA_THREADS (default: hardware concurrency): wall seconds,
//    speedup, and a bit-identical check on the merged statistics.
//  * Slot sweep — per-slot solve time vs user count J (I = 15 fixed,
//    J = 64 doubling up to ECA_SWEEP_MAX_USERS, default 8192;
//    ECA_SWEEP_SLOTS random-walk slots per point, default 4): dense slot ms
//    with 1 intra-slot thread vs N (ECA_SLOT_THREADS if set, else 8) under
//    the adaptive-granularity floor, speedup, an active-set leg (slot ms,
//    speedup over dense, mean/max per-user support, certification rounds,
//    dense fallbacks), warm vs cold Newton iterations, and a bit-identical
//    cross-check of the 1-thread and N-thread trajectories. Points the
//    floor collapses to serial reuse the 1-thread measurement
//    (pool_engaged=false, speedup 1.0) — the N-thread leg would time the
//    byte-identical serial path.
//  * Warm start — a fixed random-walk trajectory solved warm and cold:
//    mean Newton iterations per slot and the relative reduction.
//
// The original google-benchmark suite (InteriorPointLp / PdhgLp /
// RegularizedSolver scaling) still runs when ECA_GBENCH=1.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "algo/online_approx.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "solve/ipm_lp.h"
#include "solve/pdhg_lp.h"
#include "solve/regularized_solver.h"

namespace {

using namespace eca;
using namespace eca::solve;

LpProblem random_lp(Rng& rng, std::size_t n, std::size_t m) {
  LpProblem lp;
  linalg::Vec x0(n);
  for (std::size_t j = 0; j < n; ++j) {
    x0[j] = rng.uniform(0.2, 2.0);
    lp.add_variable(rng.uniform(0.1, 2.0), 0.0, x0[j] + rng.uniform(0.5, 2.0));
  }
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    const auto row = lp.add_row(0.0, kInf);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < 0.3) {
        const double a = rng.uniform(0.1, 1.5);
        lp.set_coefficient(row, j, a);
        activity += a * x0[j];
      }
    }
    lp.row_lower[row] = activity - rng.uniform(0.05, 0.5);
  }
  return lp;
}

RegularizedProblem random_p2(Rng& rng, std::size_t clouds,
                             std::size_t users) {
  RegularizedProblem p;
  p.num_clouds = clouds;
  p.num_users = users;
  p.demand.resize(users);
  for (auto& d : p.demand) d = static_cast<double>(rng.uniform_int(1, 5));
  const double total = linalg::sum(p.demand);
  p.capacity.assign(clouds, 1.25 * total / static_cast<double>(clouds));
  p.linear_cost.resize(clouds * users);
  for (auto& v : p.linear_cost) v = rng.uniform(0.5, 3.0);
  p.recon_price.assign(clouds, 1.0);
  p.migration_price.assign(clouds, 1.0);
  p.prev.assign(clouds * users, 0.0);
  for (std::size_t j = 0; j < users; ++j) {
    p.prev[p.index(rng.uniform_index(clouds), j)] = p.demand[j];
  }
  return p;
}

void BM_InteriorPointLp(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const LpProblem lp = random_lp(rng, n, n / 2);
  for (auto _ : state) {
    const LpSolution sol = InteriorPointLp().solve(lp);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
BENCHMARK(BM_InteriorPointLp)->Arg(50)->Arg(200)->Arg(800);

void BM_PdhgLp(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const LpProblem lp = random_lp(rng, n, n / 2);
  PdhgOptions options;
  options.tolerance = 1e-5;
  for (auto _ : state) {
    const LpSolution sol = PdhgLp(options).solve(lp);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
BENCHMARK(BM_PdhgLp)->Arg(50)->Arg(200)->Arg(800);

void BM_RegularizedSolver(benchmark::State& state) {
  Rng rng(42);
  const auto users = static_cast<std::size_t>(state.range(0));
  const RegularizedProblem p = random_p2(rng, 15, users);
  for (auto _ : state) {
    const RegularizedSolution sol = RegularizedSolver().solve(p);
    benchmark::DoNotOptimize(sol.objective_value);
  }
}
// 15 clouds as in the paper; users span CI to paper scale (~300).
BENCHMARK(BM_RegularizedSolver)->Arg(30)->Arg(100)->Arg(300);

// ---------------------------------------------------------------------------
// BENCH_solvers.json harness
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct NewtonPerf {
  std::size_t clouds = 0;
  std::size_t users = 0;
  std::size_t slots_solved = 0;
  long long newton_iterations = 0;
  double seconds = 0.0;
};

// The OnlineApprox inner loop in isolation: a slot sequence of same-shaped
// P2 solves, each warm-started from the previous optimum, with a reused
// workspace (zero allocations in the Newton loop after slot 0).
NewtonPerf time_newton_path(const bench::BenchScale& scale) {
  NewtonPerf perf;
  perf.clouds = 15;  // the paper's Rome deployment size
  perf.users = scale.users;
  Rng rng(scale.seed);
  RegularizedProblem p = random_p2(rng, perf.clouds, perf.users);
  RegularizedSolver solver;
  NewtonWorkspace ws;
  (void)solver.solve(p, ws);  // warm-up: workspace sizing, caches
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < scale.slots; ++t) {
    const RegularizedSolution sol = solver.solve(p, ws);
    perf.newton_iterations += sol.newton_iterations;
    ++perf.slots_solved;
    p.prev = sol.x;  // next slot continues the path
  }
  perf.seconds = seconds_since(start);
  return perf;
}

bool stats_bit_identical(const RunningStats& a, const RunningStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

bool results_bit_identical(const sim::ExperimentResult& a,
                           const sim::ExperimentResult& b) {
  if (!stats_bit_identical(a.offline_cost, b.offline_cost)) return false;
  if (a.algorithms.size() != b.algorithms.size()) return false;
  for (std::size_t i = 0; i < a.algorithms.size(); ++i) {
    const auto& sa = a.algorithms[i];
    const auto& sb = b.algorithms[i];
    if (sa.name != sb.name) return false;
    if (!stats_bit_identical(sa.ratio, sb.ratio)) return false;
    if (!stats_bit_identical(sa.absolute_cost, sb.absolute_cost)) return false;
    if (sa.worst_violation != sb.worst_violation) return false;
  }
  return true;
}

struct RunnerPerf {
  std::size_t threads = 1;
  double seconds_one_thread = 0.0;
  double seconds_n_threads = 0.0;
  bool bit_identical = false;
};

RunnerPerf time_runner(const bench::BenchScale& scale) {
  RunnerPerf perf;
  perf.threads = ThreadPool::resolve_threads(0);
  const auto make_instance = [&scale](int rep) {
    sim::ScenarioOptions options = bench::scenario_from_scale(scale);
    options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
    return sim::make_random_walk_instance(options);
  };
  const auto roster = sim::paper_algorithms();
  sim::ExperimentOptions experiment;
  experiment.repetitions = scale.repetitions;

  experiment.threads = 1;
  auto start = std::chrono::steady_clock::now();
  const sim::ExperimentResult serial =
      sim::run_experiment(make_instance, roster, experiment);
  perf.seconds_one_thread = seconds_since(start);

  experiment.threads = static_cast<int>(perf.threads);
  start = std::chrono::steady_clock::now();
  const sim::ExperimentResult parallel =
      sim::run_experiment(make_instance, roster, experiment);
  perf.seconds_n_threads = seconds_since(start);

  perf.bit_identical = results_bit_identical(serial, parallel);
  return perf;
}

// ---------------------------------------------------------------------------
// Slot sweep + warm start (v2 sections)
// ---------------------------------------------------------------------------

struct TrajectoryPerf {
  double seconds = 0.0;
  long long newton_iterations = 0;
  std::size_t slots = 0;
  // Active-set leg only: Σ_slots Σ_j |S_j|, the largest per-user support,
  // the largest admit-and-resolve round count, and dense-fallback slots.
  long long active_nnz_total = 0;
  int support_max = 0;
  int certify_rounds = 0;
  std::size_t active_fallbacks = 0;
  linalg::Vec final_x;
};

// Solves a random-walk slot trajectory (costs perturbed ±10% per slot, prev
// chained from the previous optimum) with one workspace, as OnlineApprox
// does. The walk RNG is re-seeded per call so every configuration sees
// byte-identical problems.
TrajectoryPerf run_trajectory(const RegularizedProblem& base,
                              std::size_t slots, int slot_threads,
                              bool warm_start, std::uint64_t walk_seed,
                              bool active_set = false) {
  RegularizedOptions opt;
  opt.slot_threads = slot_threads;
  opt.warm_start = warm_start;
  opt.active_set = active_set;
  RegularizedSolver solver(opt);
  NewtonWorkspace ws;
  RegularizedProblem p = base;
  Rng walk(walk_seed);
  TrajectoryPerf perf;
  perf.slots = slots;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < slots; ++t) {
    const RegularizedSolution sol = solver.solve(p, ws);
    perf.newton_iterations += sol.newton_iterations;
    if (active_set) {
      perf.active_nnz_total += sol.stats.active_nnz;
      perf.support_max = std::max(perf.support_max,
                                  sol.stats.active_support_max);
      perf.certify_rounds = std::max(perf.certify_rounds,
                                     sol.stats.active_rounds);
      if (sol.stats.active_fallback) ++perf.active_fallbacks;
    }
    if (t + 1 == slots) perf.final_x = sol.x;
    p.prev = sol.x;
    for (auto& v : p.linear_cost) v *= walk.uniform(0.9, 1.1);
  }
  perf.seconds = seconds_since(start);
  return perf;
}

struct SweepPoint {
  std::size_t users = 0;
  double slot_ms_1_thread = 0.0;
  double slot_ms_n_threads = 0.0;
  double speedup = 0.0;
  // Whether the adaptive granularity floor let the N-thread leg actually
  // engage the pool; when false the serial measurement is reused verbatim.
  bool pool_engaged = false;
  // Active-set leg (1 intra-slot thread, same trajectory).
  double slot_ms_active = 0.0;
  double active_speedup = 0.0;  // dense 1-thread / active 1-thread
  double support_mean = 0.0;    // mean |S_j| over all users and slots
  int support_max = 0;
  int certify_rounds = 0;  // worst per-slot admit-and-resolve round count
  std::size_t active_fallbacks = 0;
  long long newton_iters_warm = 0;
  long long newton_iters_cold = 0;
  bool bit_identical = false;
};

struct SweepPerf {
  std::size_t clouds = 15;
  std::size_t slots_per_point = 0;
  std::size_t threads = 0;
  std::vector<SweepPoint> points;
};

SweepPerf time_slot_sweep(const bench::BenchScale& scale) {
  SweepPerf sweep;
  const auto max_users = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SWEEP_MAX_USERS", 8192, 1));
  sweep.slots_per_point = static_cast<std::size_t>(
      bench::read_positive_scale_knob("ECA_SWEEP_SLOTS", 4, 1));
  // N-thread leg: honor an explicit ECA_SLOT_THREADS, else the issue's
  // reference point of 8 intra-slot threads.
  sweep.threads = ThreadPool::resolve_slot_threads(0);
  if (sweep.threads == 1) sweep.threads = 8;
  for (std::size_t users = 64; users <= max_users; users *= 2) {
    Rng rng(scale.seed + users);
    const RegularizedProblem base = random_p2(rng, sweep.clouds, users);
    const std::uint64_t walk_seed = scale.seed + 7 * users + 1;
    const TrajectoryPerf one =
        run_trajectory(base, sweep.slots_per_point, 1, true, walk_seed);
    const TrajectoryPerf cold =
        run_trajectory(base, sweep.slots_per_point, 1, false, walk_seed);
    SweepPoint point;
    point.users = users;
    point.slot_ms_1_thread =
        one.seconds * 1e3 / static_cast<double>(one.slots);
    // Mirror the solver's own adaptive resolution: when the min-work floor
    // or the hardware-concurrency cap collapses this point to one worker,
    // the N-thread leg runs the byte-identical serial path, so reuse the
    // serial measurement instead of timing it twice.
    const std::size_t effective = ThreadPool::resolve_slot_threads(
        static_cast<int>(sweep.threads), users, ThreadPool::slot_min_chunk());
    point.pool_engaged = effective > 1;
    if (point.pool_engaged) {
      const TrajectoryPerf many =
          run_trajectory(base, sweep.slots_per_point,
                         static_cast<int>(sweep.threads), true, walk_seed);
      point.slot_ms_n_threads =
          many.seconds * 1e3 / static_cast<double>(many.slots);
      point.speedup =
          many.seconds > 0.0 ? one.seconds / many.seconds : 0.0;
      point.bit_identical =
          one.newton_iterations == many.newton_iterations &&
          one.final_x == many.final_x;
    } else {
      point.slot_ms_n_threads = point.slot_ms_1_thread;
      point.speedup = 1.0;
      point.bit_identical = true;
    }
    const TrajectoryPerf active =
        run_trajectory(base, sweep.slots_per_point, 1, true, walk_seed,
                       /*active_set=*/true);
    point.slot_ms_active =
        active.seconds * 1e3 / static_cast<double>(active.slots);
    point.active_speedup =
        active.seconds > 0.0 ? one.seconds / active.seconds : 0.0;
    point.support_mean =
        static_cast<double>(active.active_nnz_total) /
        static_cast<double>(active.slots * users);
    point.support_max = active.support_max;
    point.certify_rounds = active.certify_rounds;
    point.active_fallbacks = active.active_fallbacks;
    point.newton_iters_warm = one.newton_iterations;
    point.newton_iters_cold = cold.newton_iterations;
    sweep.points.push_back(point);
    std::printf(
        "sweep J=%5zu: %.2f ms/slot (1 thr), %.2f ms/slot (%zu thr, "
        "pool=%s), %.2fx; active %.2f ms/slot (%.2fx, support %.2f/%d, "
        "rounds %d, fallbacks %zu), iters warm/cold %lld/%lld, "
        "bit_identical=%s\n",
        users, point.slot_ms_1_thread, point.slot_ms_n_threads,
        sweep.threads, point.pool_engaged ? "on" : "off", point.speedup,
        point.slot_ms_active, point.active_speedup, point.support_mean,
        point.support_max, point.certify_rounds, point.active_fallbacks,
        point.newton_iters_warm, point.newton_iters_cold,
        point.bit_identical ? "true" : "false");
  }
  return sweep;
}

struct WarmStartPerf {
  std::size_t clouds = 15;
  std::size_t users = 0;
  std::size_t slots = 0;
  double mean_iters_warm = 0.0;
  double mean_iters_cold = 0.0;
  double iteration_reduction = 0.0;
};

WarmStartPerf time_warm_start(const bench::BenchScale& scale) {
  WarmStartPerf perf;
  perf.users = 300;  // paper-scale user count
  // Long enough that slot 0 (necessarily cold in both runs) does not
  // dilute the per-slot mean.
  perf.slots = 24;
  Rng rng(scale.seed + 17);
  const RegularizedProblem base = random_p2(rng, perf.clouds, perf.users);
  const std::uint64_t walk_seed = scale.seed + 23;
  const TrajectoryPerf warm =
      run_trajectory(base, perf.slots, 1, true, walk_seed);
  const TrajectoryPerf cold =
      run_trajectory(base, perf.slots, 1, false, walk_seed);
  perf.mean_iters_warm = static_cast<double>(warm.newton_iterations) /
                         static_cast<double>(perf.slots);
  perf.mean_iters_cold = static_cast<double>(cold.newton_iterations) /
                         static_cast<double>(perf.slots);
  perf.iteration_reduction =
      perf.mean_iters_cold > 0.0
          ? 1.0 - perf.mean_iters_warm / perf.mean_iters_cold
          : 0.0;
  return perf;
}

void emit_json(const bench::BenchScale& scale, const NewtonPerf& newton,
               const RunnerPerf& runner, const SweepPerf& sweep,
               const WarmStartPerf& warm,
               const bench::EventsOverhead& events) {
  const std::string path = env_string("ECA_BENCH_JSON", "BENCH_solvers.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const double ns_per_iter =
      newton.newton_iterations > 0
          ? newton.seconds * 1e9 / static_cast<double>(newton.newton_iterations)
          : 0.0;
  const double slots_per_sec =
      newton.seconds > 0.0
          ? static_cast<double>(newton.slots_solved) / newton.seconds
          : 0.0;
  const double speedup = runner.seconds_n_threads > 0.0
                             ? runner.seconds_one_thread /
                                   runner.seconds_n_threads
                             : 0.0;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"eca.bench_solvers.v3\",\n");
  bench::write_meta_json(out);
  bench::write_events_overhead_json(out, events);
  std::fprintf(out,
               "  \"scale\": {\"users\": %zu, \"slots\": %zu, "
               "\"repetitions\": %d, \"seed\": %llu},\n",
               scale.users, scale.slots, scale.repetitions,
               static_cast<unsigned long long>(scale.seed));
  std::fprintf(out,
               "  \"newton\": {\"clouds\": %zu, \"users\": %zu, "
               "\"slots_solved\": %zu, \"newton_iterations\": %lld, "
               "\"seconds\": %.6f, \"slots_per_sec\": %.2f, "
               "\"ns_per_iteration\": %.1f},\n",
               newton.clouds, newton.users, newton.slots_solved,
               newton.newton_iterations, newton.seconds, slots_per_sec,
               ns_per_iter);
  std::fprintf(out,
               "  \"runner\": {\"threads\": %zu, \"seconds_1_thread\": %.4f, "
               "\"seconds_n_threads\": %.4f, \"speedup\": %.3f, "
               "\"bit_identical\": %s},\n",
               runner.threads, runner.seconds_one_thread,
               runner.seconds_n_threads, speedup,
               runner.bit_identical ? "true" : "false");
  std::fprintf(out,
               "  \"slot_sweep\": {\"clouds\": %zu, \"slots_per_point\": %zu, "
               "\"threads\": %zu, \"points\": [\n",
               sweep.clouds, sweep.slots_per_point, sweep.threads);
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const SweepPoint& p = sweep.points[i];
    std::fprintf(out,
                 "    {\"users\": %zu, \"slot_ms_1_thread\": %.3f, "
                 "\"slot_ms_n_threads\": %.3f, \"speedup\": %.3f, "
                 "\"pool_engaged\": %s, \"slot_ms_active\": %.3f, "
                 "\"active_speedup\": %.3f, \"support_mean\": %.3f, "
                 "\"support_max\": %d, \"certify_rounds\": %d, "
                 "\"active_fallbacks\": %zu, "
                 "\"newton_iters_warm\": %lld, \"newton_iters_cold\": %lld, "
                 "\"bit_identical\": %s}%s\n",
                 p.users, p.slot_ms_1_thread, p.slot_ms_n_threads, p.speedup,
                 p.pool_engaged ? "true" : "false", p.slot_ms_active,
                 p.active_speedup, p.support_mean, p.support_max,
                 p.certify_rounds, p.active_fallbacks, p.newton_iters_warm,
                 p.newton_iters_cold, p.bit_identical ? "true" : "false",
                 i + 1 < sweep.points.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  // Optional solver-telemetry block (absent with ECA_METRICS=off):
  // process-lifetime registry totals over everything the harness above
  // solved. Additive — readers of eca.bench_solvers.v3 ignore it.
  if (obs::metrics_enabled()) {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    std::fprintf(
        out,
        "  \"telemetry\": {\"solves\": %llu, \"newton_iterations\": %llu, "
        "\"warm_starts\": %llu, \"warm_fallbacks\": %llu, "
        "\"active_solves\": %llu, \"active_rounds\": %llu, "
        "\"active_fallbacks\": %llu, "
        "\"assembly_seconds\": %.6f, \"factor_seconds\": %.6f, "
        "\"solve_seconds\": %.6f},\n",
        static_cast<unsigned long long>(snap.counter("solver.solves")),
        static_cast<unsigned long long>(
            snap.counter("solver.newton_iterations")),
        static_cast<unsigned long long>(snap.counter("solver.warm_starts")),
        static_cast<unsigned long long>(
            snap.counter("solver.warm_fallbacks")),
        static_cast<unsigned long long>(snap.counter("solver.active_solves")),
        static_cast<unsigned long long>(snap.counter("solver.active_rounds")),
        static_cast<unsigned long long>(
            snap.counter("solver.active_fallbacks")),
        snap.double_counter("solver.assembly_seconds"),
        snap.double_counter("solver.factor_seconds"),
        snap.double_counter("solver.solve_seconds"));
  }
  std::fprintf(out,
               "  \"warm_start\": {\"clouds\": %zu, \"users\": %zu, "
               "\"slots\": %zu, \"mean_iters_warm\": %.3f, "
               "\"mean_iters_cold\": %.3f, \"iteration_reduction\": %.3f}\n",
               warm.clouds, warm.users, warm.slots, warm.mean_iters_warm,
               warm.mean_iters_cold, warm.iteration_reduction);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  std::printf("newton: %zu slots, %lld iters, %.1f slots/sec, %.0f ns/iter\n",
              newton.slots_solved, newton.newton_iterations, slots_per_sec,
              ns_per_iter);
  std::printf("runner: %zu threads, %.2fs -> %.2fs (%.2fx), bit_identical=%s\n",
              runner.threads, runner.seconds_one_thread,
              runner.seconds_n_threads, speedup,
              runner.bit_identical ? "true" : "false");
  std::printf("warm start (J=%zu, %zu slots): %.1f -> %.1f iters/slot "
              "(%.0f%% fewer)\n",
              warm.users, warm.slots, warm.mean_iters_cold,
              warm.mean_iters_warm, 100.0 * warm.iteration_reduction);
}

}  // namespace

int main(int argc, char** argv) {
  const eca::bench::BenchScale scale = eca::bench::read_scale();
  eca::bench::print_header("solvers", "perf trajectory harness", scale);

  const NewtonPerf newton = time_newton_path(scale);
  const RunnerPerf runner = time_runner(scale);
  const SweepPerf sweep = time_slot_sweep(scale);
  const WarmStartPerf warm = time_warm_start(scale);
  const eca::bench::EventsOverhead events =
      eca::bench::measure_default_events_overhead(scale);
  emit_json(scale, newton, runner, sweep, warm, events);

  if (eca::env_bool("ECA_GBENCH", false)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
