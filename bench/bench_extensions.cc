// Extensions beyond the paper (see DESIGN.md §6 and algo/extensions.h):
//  * prediction value: lookahead-k oracles versus the prediction-free
//    online-approx — how much would k slots of perfect foresight buy?
//  * lazy hysteresis: the practical "don't move unless it pays" policy.
//  * self-certification: the dual certificate of Section IV computed during
//    the online run (paper-pure mode), versus the measured ratio.
#include <cstdio>
#include <iostream>
#include <memory>

#include "algo/baselines.h"
#include "algo/extensions.h"
#include "algo/offline.h"
#include "algo/online_approx.h"
#include "bench_common.h"

int main() {
  using namespace eca;
  using namespace eca::bench;

  BenchScale scale = read_scale();
  // Lookahead solves a windowed LP every slot; keep the default modest.
  scale.users = static_cast<std::size_t>(env_int("ECA_USERS", 15));
  scale.slots = static_cast<std::size_t>(env_int("ECA_SLOTS", 30));
  print_header("Extensions", "lookahead oracles, hysteresis, certification",
               scale);

  std::vector<sim::NamedFactory> factories = {
      {"online-greedy",
       [] { return std::make_unique<algo::OnlineGreedy>(); }},
      {"lazy-greedy", [] { return std::make_unique<algo::LazyGreedy>(); }},
      {"online-approx",
       [] { return std::make_unique<algo::OnlineApprox>(); }},
  };
  for (std::size_t window : {2u, 4u}) {
    factories.push_back({"lookahead-" + std::to_string(window), [window] {
                           algo::LookaheadOptions options;
                           options.window = window;
                           return std::make_unique<algo::LookaheadOpt>(
                               options);
                         }});
  }

  sim::ExperimentOptions experiment;
  experiment.repetitions = scale.repetitions;
  const sim::ExperimentResult result = sim::run_experiment(
      [&](int rep) {
        sim::ScenarioOptions options = scenario_from_scale(scale);
        options.seed = scale.seed + 1000 * static_cast<std::uint64_t>(rep);
        return sim::make_rome_taxi_instance(options, rep % 6);
      },
      factories, experiment);

  Table table({"algorithm", "ratio vs offline"});
  for (const auto& summary : result.algorithms) {
    table.add_row({summary.name, ratio_cell(summary.ratio)});
  }
  emit(table, scale.csv);

  // Self-certification demo: one paper-pure run certifying its own ratio.
  {
    sim::ScenarioOptions options = scenario_from_scale(scale);
    const model::Instance instance = sim::make_rome_taxi_instance(options, 0);
    algo::OnlineApproxOptions approx_options;
    approx_options.enforce_capacity = false;  // Lemma 2 requires pure P2
    algo::OnlineApprox approx(approx_options);
    const sim::SimulationResult run = sim::Simulator::run(instance, approx);
    const algo::OfflineResult offline = algo::solve_offline(instance);
    const double opt =
        sim::Simulator::score(instance, "offline", offline.allocations)
            .weighted_total;
    std::printf(
        "\nself-certification (paper-pure run): measured ratio %.3f,\n"
        "certified ratio %.3f (dual lower bound %.1f vs offline %.1f),\n"
        "Theorem 2 worst-case bound %.1f\n",
        run.weighted_total / opt,
        approx.certificate().certified_ratio(run.weighted_total, instance),
        approx.certificate().opt_lower_bound(instance), opt,
        model::competitive_ratio_bound(instance, 1.0, 1.0));
  }
  std::printf(
      "\nexpected: lookahead-k approaches the offline optimum as k grows;\n"
      "online-approx (no prediction at all) should land between greedy and\n"
      "the small-window oracles; the certified ratio upper-bounds the\n"
      "measured one at a fraction of Theorem 2's worst-case bound.\n");
  return 0;
}
