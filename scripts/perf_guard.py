#!/usr/bin/env python3
"""Performance gate over a BENCH json file.

    scripts/perf_guard.py BENCH_solvers.json [BENCH_offline.json ...]

Dispatches on the file's "schema" field and fails (exit 1) when it shows a
regression the repo has promised not to reintroduce.

eca.bench_solvers.v3 (slot sweep):

  * the active-set path slower than the dense 1-thread path at any point
    with J >= 1024 (small points may legitimately lose to admit-and-resolve
    overhead; at scale the reduced Newton solve must win);
  * any point where the pool actually engaged (pool_engaged=true under the
    adaptive granularity floor) with a multi-thread speedup below 0.95 —
    the floor exists precisely so parallelism is never a slowdown, and
    points it collapses to serial report speedup 1.0 by construction;
  * any bit_identical=false — thread count must never change results.

eca.bench_offline.v1 (parallel PDHG horizon-LP sweep):

  * any bit_identical=false — the partitioned solve must be bit-identical
    to serial for every LP thread count;
  * any pool-engaged point with speedup below 0.95 (same granularity-floor
    contract as above);
  * the largest pool-engaged point must beat serial outright (speedup
    > 1.0) — that scale is the reason the parallel path exists. On hosts
    where no point engages the pool (1-CPU CI containers: the
    hardware-concurrency cap collapses every leg to serial) the gate prints
    a note instead; bit-identity is still enforced via the oversubscribed
    determinism tests.

eca.bench_baselines.v1 (baseline-evaluation sweep):

  * any bit_identical=false — the slot fan-out must reproduce the serial
    trajectory bit for bit for every separable baseline;
  * any pool-engaged point with fan-out speedup below 0.95 (work-volume
    floor contract, same as above; on 1-CPU hosts no point engages and a
    note is printed);
  * wherever the algorithm's default path chains warm starts
    (warm_enabled=true) and the bench ran with ECA_METRICS=on
    (iters_rebuild_cold > 0), the warm leg must not cost IPM iterations:
    warm_iter_ratio <= 1.02. Iteration counts are deterministic, so this
    gate is immune to the +/-10% wall-clock noise of shared CI hosts —
    warm_max_users exists precisely because hints that stop paying in
    iterations must disengage (without metrics a note is printed);
  * at J >= 1024, the default path must stay within 10% of wall parity
    with rebuild+cold (warm_speedup >= 0.9) — caching must never be a
    slowdown at the scale it exists for;
  * cost_drift above 0.05 — warm starts move the solver trajectory, and
    degenerate objectives (perf-opt/oper-opt) may land on a different
    optimal vertex, but the evaluated cost must stay in the same ballpark;
  * max_violation above 1e-5 — the optimized path must stay feasible.

eca.bench_scale.v1 (user-class aggregation sweep):

  * any streaming-parity cross-check failure — the streaming class-space
    driver must match the materializing simulator running the same
    aggregated algorithm to summation order (they perform bitwise-identical
    solves);
  * cost_delta_rel above 1e-5 wherever the per-user leg ran — P2 is
    strictly convex, so the collapsed and per-user paths share a unique
    optimum and may differ only by solver tolerance;
  * max_violation above 1e-5 on any point or the long run;
  * at J >= 100000 where the per-user leg ran: collapse_ratio >= 10 and
    aggregated speedup >= 2.0 (wall-gated only when the per-user leg is
    above the noise floor). On quick-mode runs with no such point a note
    is printed; the committed BENCH_scale.json carries the full-scale
    evidence;
  * the long run (when present) must stay under the 16 GB peak-RSS budget
    — the streaming representation is the reason a 10^6-user, 60-slot
    trajectory fits.

eca.prop_summary.v1 (property-harness run summary, written by
examples/prop_fuzz --summary):

  * zero scenarios run, or any oracle violation (failures > 0) — each
    failure is printed with its seed and shrunk replay path so the witness
    can be re-run with `examples/prop_fuzz --replay FILE`.

All BENCH schemas additionally carry an "events_overhead" block (best-of-N
wall time for a representative simulation with event streaming off vs. on,
buffer-only) and a provenance "meta" block; the shared gate requires the
events-on leg within 2% of events-off. Quick-mode timings below 10 ms are
too noisy to gate and print a note instead. The meta block's "checks"
entry records the prop-harness smoke run against the same binary at bench
time; a recorded ok=false fails the gate, a recorded skip is a note.

Exits 0 with a summary line per file when every check passes.
"""
import json
import sys

ACTIVE_GATE_USERS = 1024
MIN_POOL_SPEEDUP = 0.95
MAX_EVENTS_OVERHEAD = 1.02
MIN_GATEABLE_SECONDS = 0.01


def fail(message):
    print(f"perf_guard: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_events_overhead(path, bench):
    """Shared events-on-vs-off gate; every BENCH schema carries the block."""
    block = bench.get("events_overhead")
    if block is None:
        print(f"perf_guard: note: {path}: no events_overhead block "
              "(pre-events bench json); overhead gate not exercised")
        return
    off, on = block["seconds_off"], block["seconds_on"]
    if off < MIN_GATEABLE_SECONDS:
        print(f"perf_guard: note: {path}: events-off leg {off * 1e3:.2f} ms "
              "is below the gateable floor (quick-mode scale); overhead "
              "gate not exercised")
        return
    if on > off * MAX_EVENTS_OVERHEAD:
        fail(f"{path}: events-on wall time {on:.4f}s exceeds "
             f"{MAX_EVENTS_OVERHEAD:.2f}x the events-off leg {off:.4f}s — "
             "event recording must stay off the critical path")
    print(f"perf_guard: OK: {path}: events overhead "
          f"{100.0 * (on / off - 1.0):+.2f}% "
          f"(on {on:.4f}s vs off {off:.4f}s)")


def check_meta_checks(path, bench):
    """Verification-gate provenance shared by every BENCH schema: the meta
    block records a prop-harness smoke run against the same binary that
    produced the perf numbers. A recorded failure poisons the perf point; a
    recorded skip (ECA_BENCH_PROP_SMOKE=0) and a pre-checks bench json are
    informational."""
    block = bench.get("meta", {}).get("checks", {}).get("prop_smoke")
    if block is None:
        print(f"perf_guard: note: {path}: no meta.checks block "
              "(pre-checks bench json); gate provenance not recorded")
        return
    if block.get("skipped"):
        print(f"perf_guard: note: {path}: prop smoke skipped at bench time "
              "(ECA_BENCH_PROP_SMOKE=0)")
        return
    if not block.get("ok"):
        fail(f"{path}: meta.checks.prop_smoke recorded "
             f"{block.get('failures', '?')} oracle violation(s) at bench "
             "time — the perf numbers came from a binary that fails "
             "verification")
    print(f"perf_guard: OK: {path}: prop smoke at bench time "
          f"({block.get('scenarios', 0)} scenarios, "
          f"{block.get('wall_seconds', 0.0):.3f}s)")


def check_solvers(path, bench):
    points = bench.get("slot_sweep", {}).get("points", [])
    if not points:
        fail(f"{path}: slot_sweep has no points")
    gated = 0
    for point in points:
        users = point["users"]
        where = f"{path}: J={users}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — thread count changed "
                 "the trajectory")
        if point["pool_engaged"] and point["speedup"] < MIN_POOL_SPEEDUP:
            fail(f"{where}: multi-thread speedup {point['speedup']:.3f} < "
                 f"{MIN_POOL_SPEEDUP} with the pool engaged; the adaptive "
                 "granularity floor should have kept this point serial")
        if users >= ACTIVE_GATE_USERS:
            gated += 1
            if point["slot_ms_active"] > point["slot_ms_1_thread"]:
                fail(f"{where}: active-set {point['slot_ms_active']:.3f} "
                     f"ms/slot slower than dense "
                     f"{point['slot_ms_1_thread']:.3f} ms/slot")
    if gated == 0:
        print(f"perf_guard: note: no point with J >= {ACTIVE_GATE_USERS}; "
              "active-vs-dense gate not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} sweep points "
          f"({gated} under the active-vs-dense gate)")


def check_offline(path, bench):
    points = bench.get("points", [])
    if not points:
        fail(f"{path}: no sweep points")
    engaged = [p for p in points if p["pool_engaged"]]
    for point in points:
        where = f"{path}: J={point['users']} T={point['slots']}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — LP thread count changed "
                 "the solve")
        if point["pool_engaged"] and point["speedup"] < MIN_POOL_SPEEDUP:
            fail(f"{where}: multi-thread speedup {point['speedup']:.3f} < "
                 f"{MIN_POOL_SPEEDUP} with the pool engaged; the "
                 "nonzeros-per-worker floor should have kept this point "
                 "serial")
    if engaged:
        largest = max(engaged, key=lambda p: p["nnz"])
        if largest["speedup"] <= 1.0:
            fail(f"{path}: J={largest['users']} T={largest['slots']} "
                 f"(largest engaged point, {largest['nnz']} nnz): speedup "
                 f"{largest['speedup']:.3f} <= 1.0 — the parallel PDHG path "
                 "must beat serial at scale")
    else:
        print(f"perf_guard: note: {path}: no point engaged the pool "
              "(hardware-concurrency cap); speedup gates not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} offline points "
          f"({len(engaged)} pool-engaged)")


MAX_COST_DRIFT = 0.05
MAX_VIOLATION = 1e-5
MIN_SKELETON_SPEEDUP = 0.9
MAX_WARM_ITER_RATIO = 1.02


def check_baselines(path, bench):
    points = bench.get("points", [])
    if not points:
        fail(f"{path}: no sweep points")
    engaged = warm_gated = scale_gated = 0
    for point in points:
        where = f"{path}: {point['algorithm']} J={point['users']}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — the slot fan-out changed "
                 "the trajectory")
        if point["pool_engaged"]:
            engaged += 1
            if point["speedup"] < MIN_POOL_SPEEDUP:
                fail(f"{where}: fan-out speedup {point['speedup']:.3f} < "
                     f"{MIN_POOL_SPEEDUP} with the pool engaged; the "
                     "work-volume floor should have kept this point serial")
        if point["cost_drift"] > MAX_COST_DRIFT:
            fail(f"{where}: cost_drift {point['cost_drift']:.3e} > "
                 f"{MAX_COST_DRIFT} — skeleton+warm landed far from the "
                 "legacy path's cost")
        if point["max_violation"] > MAX_VIOLATION:
            fail(f"{where}: max_violation {point['max_violation']:.3e} > "
                 f"{MAX_VIOLATION} — the optimized path left feasibility")
        if point["warm_enabled"] and point.get("iters_rebuild_cold", 0) > 0:
            warm_gated += 1
            if point["warm_iter_ratio"] > MAX_WARM_ITER_RATIO:
                fail(f"{where}: warm_iter_ratio "
                     f"{point['warm_iter_ratio']:.4f} > "
                     f"{MAX_WARM_ITER_RATIO} — warm hints cost IPM "
                     "iterations here; lower warm_max_users so the chain "
                     "disengages at this scale")
        if point["users"] >= ACTIVE_GATE_USERS:
            scale_gated += 1
            if point["warm_speedup"] < MIN_SKELETON_SPEEDUP:
                fail(f"{where}: default-path speedup "
                     f"{point['warm_speedup']:.3f} < {MIN_SKELETON_SPEEDUP} "
                     "over rebuild+cold — caching must not be a slowdown "
                     "at scale")
    if warm_gated == 0:
        print(f"perf_guard: note: {path}: no warm-enabled point with "
              "iteration data (run with ECA_METRICS=on); warm-iteration "
              "gate not exercised")
    if scale_gated == 0:
        print(f"perf_guard: note: {path}: no point with J >= "
              f"{ACTIVE_GATE_USERS}; at-scale parity gate not exercised")
    if engaged == 0:
        print(f"perf_guard: note: {path}: no point engaged the pool "
              "(hardware-concurrency cap); fan-out speedup gate not "
              "exercised")
    print(f"perf_guard: OK: {path}: {len(points)} baseline points "
          f"({engaged} pool-engaged, {warm_gated} under the warm-iteration "
          f"gate, {scale_gated} under the at-scale parity gate)")


SCALE_GATE_USERS = 100000
MIN_SCALE_COLLAPSE = 10.0
MIN_SCALE_SPEEDUP = 2.0
MAX_SCALE_COST_DELTA = 1e-5
MAX_SCALE_RSS_MB = 16384.0


def check_scale(path, bench):
    points = bench.get("points", [])
    if not points:
        fail(f"{path}: no sweep points")
    parity_checked = exact_checked = scale_gated = 0
    for point in points:
        where = f"{path}: J={point['users']} T={point['slots']}"
        if point["max_violation"] > MAX_VIOLATION:
            fail(f"{where}: max_violation {point['max_violation']:.3e} > "
                 f"{MAX_VIOLATION} — the aggregated path left feasibility")
        if point["parity_checked"]:
            parity_checked += 1
            if not point["streaming_parity"]:
                fail(f"{where}: streaming_parity=false — the streaming "
                     "driver diverged from the materializing simulator "
                     "beyond summation-order tolerance")
        if point["has_per_user"]:
            exact_checked += 1
            if point["cost_delta_rel"] > MAX_SCALE_COST_DELTA:
                fail(f"{where}: cost_delta_rel "
                     f"{point['cost_delta_rel']:.3e} > "
                     f"{MAX_SCALE_COST_DELTA} — collapsed and per-user "
                     "solves must share P2's unique optimum")
            if point["users"] >= SCALE_GATE_USERS:
                scale_gated += 1
                if point["collapse_ratio"] < MIN_SCALE_COLLAPSE:
                    fail(f"{where}: collapse_ratio "
                         f"{point['collapse_ratio']:.2f} < "
                         f"{MIN_SCALE_COLLAPSE} — class aggregation "
                         "stopped collapsing at the scale it exists for")
                if (point["seconds_per_user"] >= MIN_GATEABLE_SECONDS
                        and point["speedup"] < MIN_SCALE_SPEEDUP):
                    fail(f"{where}: aggregated speedup "
                         f"{point['speedup']:.2f} < {MIN_SCALE_SPEEDUP} "
                         "over the per-user path at gate scale")
    long_run = bench.get("long_run")
    if long_run is not None:
        where = f"{path}: long run J={long_run['users']} T={long_run['slots']}"
        if long_run["max_violation"] > MAX_VIOLATION:
            fail(f"{where}: max_violation {long_run['max_violation']:.3e} > "
                 f"{MAX_VIOLATION}")
        if long_run["peak_rss_mb"] > MAX_SCALE_RSS_MB:
            fail(f"{where}: peak RSS {long_run['peak_rss_mb']:.0f} MB > "
                 f"{MAX_SCALE_RSS_MB:.0f} MB — the streaming representation "
                 "must keep the long trajectory in budget")
    else:
        print(f"perf_guard: note: {path}: no long run (disabled); "
              "memory-budget gate not exercised")
    if scale_gated == 0:
        print(f"perf_guard: note: {path}: no per-user point with J >= "
              f"{SCALE_GATE_USERS} (quick-mode scale); speedup/collapse "
              "gates not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} scale points "
          f"({exact_checked} cross-checked, {parity_checked} parity-checked, "
          f"{scale_gated} under the at-scale gate)")


def check_prop_summary(path, summary):
    """Property-harness run summary (eca.prop_summary.v1): any oracle
    violation fails the gate exactly like a perf regression — the harness
    already shrank each failure to a minimal replay file, so the output
    points straight at the witness."""
    scenarios = summary.get("scenarios", 0)
    if scenarios < 1:
        fail(f"{path}: harness ran zero scenarios")
    failures = summary.get("failures", 0)
    if failures > 0:
        for detail in summary.get("failure_details", []):
            print(f"perf_guard: {path}: seed {detail.get('seed')}: "
                  f"{detail.get('violation')} "
                  f"(replay: {detail.get('replay_path') or 'not written'})",
                  file=sys.stderr)
        fail(f"{path}: {failures} oracle violation(s) across {scenarios} "
             "scenarios — replay the shrunk witness with "
             "examples/prop_fuzz --replay")
    budget_note = (" (time budget exhausted)"
                   if summary.get("budget_exhausted") else "")
    print(f"perf_guard: OK: {path}: {scenarios} scenarios verified, "
          f"offline legs on {summary.get('offline_legs_run', 0)}, "
          f"worst KKT {summary.get('worst_kkt', 0.0):.3g}, "
          f"worst infeasibility {summary.get('worst_infeasibility', 0.0):.3g}"
          f"{budget_note}")


CHECKS = {
    "eca.bench_solvers.v3": check_solvers,
    "eca.bench_offline.v1": check_offline,
    "eca.bench_baselines.v1": check_baselines,
    "eca.bench_scale.v1": check_scale,
}


def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} BENCH.json [BENCH.json ...]")
    for path in sys.argv[1:]:
        try:
            with open(path, encoding="utf-8") as handle:
                bench = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"{path}: {err}")
        schema = bench.get("schema")
        if schema == "eca.prop_summary.v1":
            # Harness summaries carry no benchmark timings, so the shared
            # events-overhead gate does not apply.
            check_prop_summary(path, bench)
            continue
        check = CHECKS.get(schema)
        if check is None:
            fail(f"{path}: unknown schema {schema!r}; expected one of "
                 f"{sorted(CHECKS) + ['eca.prop_summary.v1']}")
        check(path, bench)
        check_events_overhead(path, bench)
        check_meta_checks(path, bench)


if __name__ == "__main__":
    main()
