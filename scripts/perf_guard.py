#!/usr/bin/env python3
"""Performance gate over a BENCH json file.

    scripts/perf_guard.py BENCH_solvers.json [BENCH_offline.json ...]

Dispatches on the file's "schema" field and fails (exit 1) when it shows a
regression the repo has promised not to reintroduce.

eca.bench_solvers.v3 (slot sweep):

  * the active-set path slower than the dense 1-thread path at any point
    with J >= 1024 (small points may legitimately lose to admit-and-resolve
    overhead; at scale the reduced Newton solve must win);
  * any point where the pool actually engaged (pool_engaged=true under the
    adaptive granularity floor) with a multi-thread speedup below 0.95 —
    the floor exists precisely so parallelism is never a slowdown, and
    points it collapses to serial report speedup 1.0 by construction;
  * any bit_identical=false — thread count must never change results.

eca.bench_offline.v1 (parallel PDHG horizon-LP sweep):

  * any bit_identical=false — the partitioned solve must be bit-identical
    to serial for every LP thread count;
  * any pool-engaged point with speedup below 0.95 (same granularity-floor
    contract as above);
  * the largest pool-engaged point must beat serial outright (speedup
    > 1.0) — that scale is the reason the parallel path exists. On hosts
    where no point engages the pool (1-CPU CI containers: the
    hardware-concurrency cap collapses every leg to serial) the gate prints
    a note instead; bit-identity is still enforced via the oversubscribed
    determinism tests.

eca.bench_baselines.v1 (baseline-evaluation sweep):

  * any bit_identical=false — the slot fan-out must reproduce the serial
    trajectory bit for bit for every separable baseline;
  * any pool-engaged point with fan-out speedup below 0.95 (work-volume
    floor contract, same as above; on 1-CPU hosts no point engages and a
    note is printed);
  * wherever the algorithm's default path chains warm starts
    (warm_enabled=true) and the bench ran with ECA_METRICS=on
    (iters_rebuild_cold > 0), the warm leg must not cost IPM iterations:
    warm_iter_ratio <= 1.02. Iteration counts are deterministic, so this
    gate is immune to the +/-10% wall-clock noise of shared CI hosts —
    warm_max_users exists precisely because hints that stop paying in
    iterations must disengage (without metrics a note is printed);
  * at J >= 1024, the default path must stay within 10% of wall parity
    with rebuild+cold (warm_speedup >= 0.9) — caching must never be a
    slowdown at the scale it exists for;
  * cost_drift above 0.05 — warm starts move the solver trajectory, and
    degenerate objectives (perf-opt/oper-opt) may land on a different
    optimal vertex, but the evaluated cost must stay in the same ballpark;
  * max_violation above 1e-5 — the optimized path must stay feasible.

All three schemas additionally carry an "events_overhead" block (best-of-N
wall time for a representative simulation with event streaming off vs. on,
buffer-only) and a provenance "meta" block; the shared gate requires the
events-on leg within 2% of events-off. Quick-mode timings below 10 ms are
too noisy to gate and print a note instead.

Exits 0 with a summary line per file when every check passes.
"""
import json
import sys

ACTIVE_GATE_USERS = 1024
MIN_POOL_SPEEDUP = 0.95
MAX_EVENTS_OVERHEAD = 1.02
MIN_GATEABLE_SECONDS = 0.01


def fail(message):
    print(f"perf_guard: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_events_overhead(path, bench):
    """Shared events-on-vs-off gate; every BENCH schema carries the block."""
    block = bench.get("events_overhead")
    if block is None:
        print(f"perf_guard: note: {path}: no events_overhead block "
              "(pre-events bench json); overhead gate not exercised")
        return
    off, on = block["seconds_off"], block["seconds_on"]
    if off < MIN_GATEABLE_SECONDS:
        print(f"perf_guard: note: {path}: events-off leg {off * 1e3:.2f} ms "
              "is below the gateable floor (quick-mode scale); overhead "
              "gate not exercised")
        return
    if on > off * MAX_EVENTS_OVERHEAD:
        fail(f"{path}: events-on wall time {on:.4f}s exceeds "
             f"{MAX_EVENTS_OVERHEAD:.2f}x the events-off leg {off:.4f}s — "
             "event recording must stay off the critical path")
    print(f"perf_guard: OK: {path}: events overhead "
          f"{100.0 * (on / off - 1.0):+.2f}% "
          f"(on {on:.4f}s vs off {off:.4f}s)")


def check_solvers(path, bench):
    points = bench.get("slot_sweep", {}).get("points", [])
    if not points:
        fail(f"{path}: slot_sweep has no points")
    gated = 0
    for point in points:
        users = point["users"]
        where = f"{path}: J={users}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — thread count changed "
                 "the trajectory")
        if point["pool_engaged"] and point["speedup"] < MIN_POOL_SPEEDUP:
            fail(f"{where}: multi-thread speedup {point['speedup']:.3f} < "
                 f"{MIN_POOL_SPEEDUP} with the pool engaged; the adaptive "
                 "granularity floor should have kept this point serial")
        if users >= ACTIVE_GATE_USERS:
            gated += 1
            if point["slot_ms_active"] > point["slot_ms_1_thread"]:
                fail(f"{where}: active-set {point['slot_ms_active']:.3f} "
                     f"ms/slot slower than dense "
                     f"{point['slot_ms_1_thread']:.3f} ms/slot")
    if gated == 0:
        print(f"perf_guard: note: no point with J >= {ACTIVE_GATE_USERS}; "
              "active-vs-dense gate not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} sweep points "
          f"({gated} under the active-vs-dense gate)")


def check_offline(path, bench):
    points = bench.get("points", [])
    if not points:
        fail(f"{path}: no sweep points")
    engaged = [p for p in points if p["pool_engaged"]]
    for point in points:
        where = f"{path}: J={point['users']} T={point['slots']}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — LP thread count changed "
                 "the solve")
        if point["pool_engaged"] and point["speedup"] < MIN_POOL_SPEEDUP:
            fail(f"{where}: multi-thread speedup {point['speedup']:.3f} < "
                 f"{MIN_POOL_SPEEDUP} with the pool engaged; the "
                 "nonzeros-per-worker floor should have kept this point "
                 "serial")
    if engaged:
        largest = max(engaged, key=lambda p: p["nnz"])
        if largest["speedup"] <= 1.0:
            fail(f"{path}: J={largest['users']} T={largest['slots']} "
                 f"(largest engaged point, {largest['nnz']} nnz): speedup "
                 f"{largest['speedup']:.3f} <= 1.0 — the parallel PDHG path "
                 "must beat serial at scale")
    else:
        print(f"perf_guard: note: {path}: no point engaged the pool "
              "(hardware-concurrency cap); speedup gates not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} offline points "
          f"({len(engaged)} pool-engaged)")


MAX_COST_DRIFT = 0.05
MAX_VIOLATION = 1e-5
MIN_SKELETON_SPEEDUP = 0.9
MAX_WARM_ITER_RATIO = 1.02


def check_baselines(path, bench):
    points = bench.get("points", [])
    if not points:
        fail(f"{path}: no sweep points")
    engaged = warm_gated = scale_gated = 0
    for point in points:
        where = f"{path}: {point['algorithm']} J={point['users']}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — the slot fan-out changed "
                 "the trajectory")
        if point["pool_engaged"]:
            engaged += 1
            if point["speedup"] < MIN_POOL_SPEEDUP:
                fail(f"{where}: fan-out speedup {point['speedup']:.3f} < "
                     f"{MIN_POOL_SPEEDUP} with the pool engaged; the "
                     "work-volume floor should have kept this point serial")
        if point["cost_drift"] > MAX_COST_DRIFT:
            fail(f"{where}: cost_drift {point['cost_drift']:.3e} > "
                 f"{MAX_COST_DRIFT} — skeleton+warm landed far from the "
                 "legacy path's cost")
        if point["max_violation"] > MAX_VIOLATION:
            fail(f"{where}: max_violation {point['max_violation']:.3e} > "
                 f"{MAX_VIOLATION} — the optimized path left feasibility")
        if point["warm_enabled"] and point.get("iters_rebuild_cold", 0) > 0:
            warm_gated += 1
            if point["warm_iter_ratio"] > MAX_WARM_ITER_RATIO:
                fail(f"{where}: warm_iter_ratio "
                     f"{point['warm_iter_ratio']:.4f} > "
                     f"{MAX_WARM_ITER_RATIO} — warm hints cost IPM "
                     "iterations here; lower warm_max_users so the chain "
                     "disengages at this scale")
        if point["users"] >= ACTIVE_GATE_USERS:
            scale_gated += 1
            if point["warm_speedup"] < MIN_SKELETON_SPEEDUP:
                fail(f"{where}: default-path speedup "
                     f"{point['warm_speedup']:.3f} < {MIN_SKELETON_SPEEDUP} "
                     "over rebuild+cold — caching must not be a slowdown "
                     "at scale")
    if warm_gated == 0:
        print(f"perf_guard: note: {path}: no warm-enabled point with "
              "iteration data (run with ECA_METRICS=on); warm-iteration "
              "gate not exercised")
    if scale_gated == 0:
        print(f"perf_guard: note: {path}: no point with J >= "
              f"{ACTIVE_GATE_USERS}; at-scale parity gate not exercised")
    if engaged == 0:
        print(f"perf_guard: note: {path}: no point engaged the pool "
              "(hardware-concurrency cap); fan-out speedup gate not "
              "exercised")
    print(f"perf_guard: OK: {path}: {len(points)} baseline points "
          f"({engaged} pool-engaged, {warm_gated} under the warm-iteration "
          f"gate, {scale_gated} under the at-scale parity gate)")


CHECKS = {
    "eca.bench_solvers.v3": check_solvers,
    "eca.bench_offline.v1": check_offline,
    "eca.bench_baselines.v1": check_baselines,
}


def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} BENCH.json [BENCH.json ...]")
    for path in sys.argv[1:]:
        try:
            with open(path, encoding="utf-8") as handle:
                bench = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"{path}: {err}")
        schema = bench.get("schema")
        check = CHECKS.get(schema)
        if check is None:
            fail(f"{path}: unknown schema {schema!r}; expected one of "
                 f"{sorted(CHECKS)}")
        check(path, bench)
        check_events_overhead(path, bench)


if __name__ == "__main__":
    main()
