#!/usr/bin/env python3
"""Performance gate over a BENCH_solvers.json slot sweep.

    scripts/perf_guard.py BENCH_solvers.json

Reads an eca.bench_solvers.v3 file and fails (exit 1) when the sweep shows
a regression the repo has promised not to reintroduce:

  * the active-set path slower than the dense 1-thread path at any point
    with J >= 1024 (small points may legitimately lose to admit-and-resolve
    overhead; at scale the reduced Newton solve must win);
  * any point where the pool actually engaged (pool_engaged=true under the
    adaptive granularity floor) with a multi-thread speedup below 0.95 —
    the floor exists precisely so parallelism is never a slowdown, and
    points it collapses to serial report speedup 1.0 by construction;
  * any bit_identical=false — thread count must never change results.

Exits 0 with a summary line when every check passes.
"""
import json
import sys

SCHEMA = "eca.bench_solvers.v3"
ACTIVE_GATE_USERS = 1024
MIN_POOL_SPEEDUP = 0.95


def fail(message):
    print(f"perf_guard: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_solvers.json")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            bench = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    schema = bench.get("schema")
    if schema != SCHEMA:
        fail(f"{path}: schema is {schema!r}, expected {SCHEMA!r}")
    points = bench.get("slot_sweep", {}).get("points", [])
    if not points:
        fail(f"{path}: slot_sweep has no points")
    gated = 0
    for point in points:
        users = point["users"]
        where = f"{path}: J={users}"
        if not point["bit_identical"]:
            fail(f"{where}: bit_identical=false — thread count changed "
                 "the trajectory")
        if point["pool_engaged"] and point["speedup"] < MIN_POOL_SPEEDUP:
            fail(f"{where}: multi-thread speedup {point['speedup']:.3f} < "
                 f"{MIN_POOL_SPEEDUP} with the pool engaged; the adaptive "
                 "granularity floor should have kept this point serial")
        if users >= ACTIVE_GATE_USERS:
            gated += 1
            if point["slot_ms_active"] > point["slot_ms_1_thread"]:
                fail(f"{where}: active-set {point['slot_ms_active']:.3f} "
                     f"ms/slot slower than dense "
                     f"{point['slot_ms_1_thread']:.3f} ms/slot")
    if gated == 0:
        print(f"perf_guard: note: no point with J >= {ACTIVE_GATE_USERS}; "
              "active-vs-dense gate not exercised")
    print(f"perf_guard: OK: {path}: {len(points)} sweep points "
          f"({gated} under the active-vs-dense gate)")


if __name__ == "__main__":
    main()
