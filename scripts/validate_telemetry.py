#!/usr/bin/env python3
"""Schema checker for the observability artifacts.

    scripts/validate_telemetry.py --telemetry run.telemetry.json \
                                  [--trace run.trace.json] \
                                  [--events run.events.jsonl]

Validates:
  * the telemetry file against schema eca.telemetry.v3 — required fields,
    types, the accounting invariant that the per-slot weighted cost splits
    sum to total_cost within 1e-9 relative (float reassociation is the only
    permitted difference), and — when a reference is attached — that each
    slot's regret split sums to cost_total - offline_cost within the same
    tolerance;
  * the optional Chrome-trace file: a strict JSON array, one event per
    line, each a complete-event record ("ph":"X") with numeric ts/dur —
    i.e. loadable by chrome://tracing and Perfetto;
  * the optional eca.events.v1 JSONL stream: a header line with matching
    schema/count, contiguous sequence numbers, known event kinds with the
    right payload fields, and monotone slot ordering within each run scope.

Exits 0 when valid, 1 with a message on the first violation.
"""
import argparse
import json
import sys

SCHEMA = "eca.telemetry.v3"
EVENTS_SCHEMA = "eca.events.v1"
REL_TOL = 1e-9

RUN_FIELDS = {
    "schema": str,
    "algorithm": str,
    "num_clouds": int,
    "num_users": int,
    "num_slots": int,
    "total_cost": (int, float),
    "wall_seconds": (int, float),
    "has_reference": bool,
    "offline_total_cost": (int, float),
    "ratio": (int, float),
    "trace_dropped": int,
    "events_dropped": int,
    "total_newton_iterations": int,
    "warm_started_slots": int,
    "warm_fallback_slots": int,
    "active_set_slots": int,
    "active_fallback_slots": int,
    "slots": list,
}

SLOT_FIELDS = {
    "slot": int,
    "cost_operation": (int, float),
    "cost_service_quality": (int, float),
    "cost_reconfiguration": (int, float),
    "cost_migration": (int, float),
}

# Present on every slot exactly when the run has a reference attached.
SLOT_REFERENCE_FIELDS = {
    "offline_cost": (int, float),
    "ratio_cum": (int, float),
    "regret_operation": (int, float),
    "regret_service_quality": (int, float),
    "regret_reconfiguration": (int, float),
    "regret_migration": (int, float),
}

SOLVE_FIELDS = {
    "newton_iterations": int,
    "mu_steps": int,
    "kkt_comp_avg": (int, float),
    "kkt_dual_residual": (int, float),
    "warm_started": bool,
    "warm_fallback": bool,
    "active_set": bool,
    "active_fallback": bool,
    "active_rounds": int,
    "active_nnz": int,
    "active_support_max": int,
    "certify_residual": (int, float),
    "solve_seconds": (int, float),
    "assembly_seconds": (int, float),
    "factor_seconds": (int, float),
}


def fail(message):
    print(f"validate_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for name, kind in fields.items():
        if name not in obj:
            fail(f"{where}: missing field '{name}'")
        value = obj[name]
        # bool is an int subclass; require real ints where ints are expected.
        if kind is int and isinstance(value, bool):
            fail(f"{where}: field '{name}' must be an integer, got bool")
        if not isinstance(value, kind):
            fail(f"{where}: field '{name}' has type {type(value).__name__}")


def validate_telemetry(path):
    try:
        with open(path, encoding="utf-8") as handle:
            run = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    check_fields(run, RUN_FIELDS, path)
    if run["schema"] != SCHEMA:
        fail(f"{path}: schema is '{run['schema']}', expected '{SCHEMA}'")
    if len(run["slots"]) != run["num_slots"]:
        fail(f"{path}: {len(run['slots'])} slot records for "
             f"num_slots={run['num_slots']}")
    has_reference = run["has_reference"]
    slot_sum = 0.0
    for index, slot in enumerate(run["slots"]):
        where = f"{path}: slots[{index}]"
        check_fields(slot, SLOT_FIELDS, where)
        if slot["slot"] != index:
            fail(f"{where}: slot index {slot['slot']} != position {index}")
        cost_total = (slot["cost_operation"] + slot["cost_service_quality"]
                      + slot["cost_reconfiguration"]
                      + slot["cost_migration"])
        slot_sum += cost_total
        if has_reference:
            check_fields(slot, SLOT_REFERENCE_FIELDS, where)
            regret_sum = (slot["regret_operation"]
                          + slot["regret_service_quality"]
                          + slot["regret_reconfiguration"]
                          + slot["regret_migration"])
            excess = cost_total - slot["offline_cost"]
            tol = REL_TOL * max(1.0, abs(cost_total))
            if abs(regret_sum - excess) > tol:
                fail(f"{where}: regret split sums to {regret_sum!r}, "
                     f"expected cost - offline_cost = {excess!r}")
        elif "ratio_cum" in slot:
            fail(f"{where}: attribution fields present without "
                 "has_reference")
        if "solve" in slot:
            check_fields(slot["solve"], SOLVE_FIELDS, f"{where}.solve")
    total = run["total_cost"]
    tolerance = REL_TOL * max(1.0, abs(total))
    if abs(slot_sum - total) > tolerance:
        fail(f"{path}: slot cost sum {slot_sum!r} differs from total_cost "
             f"{total!r} by {abs(slot_sum - total):.3e} (> {tolerance:.3e})")
    if has_reference and run["slots"]:
        final_ratio = run["slots"][-1]["ratio_cum"]
        # Numerator and denominator each carry their own <=1e-9 relative
        # reassociation drift; allow an order of magnitude of headroom.
        if abs(final_ratio - run["ratio"]) > 1e-8 * max(1.0, run["ratio"]):
            fail(f"{path}: final ratio_cum {final_ratio!r} differs from "
                 f"run ratio {run['ratio']!r}")
    solved = sum(1 for slot in run["slots"] if "solve" in slot)
    print(f"validate_telemetry: OK: {path}: {run['algorithm']}, "
          f"{run['num_slots']} slots ({solved} with solver stats), "
          f"slot-sum drift {abs(slot_sum - total):.3e}")


def validate_trace(path):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
            events = json.loads(text)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if not isinstance(events, list):
        fail(f"{path}: top level must be a JSON array of trace events")
    # One event per line: every non-bracket line holds exactly one record.
    body_lines = [line for line in text.splitlines()
                  if line.strip() not in ("[", "]", "")]
    if len(body_lines) != len(events):
        fail(f"{path}: {len(events)} events across {len(body_lines)} lines; "
             "expected one event per line")
    for index, event in enumerate(events):
        where = f"{path}: event[{index}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        for name in ("name", "ph", "pid", "tid", "ts", "dur"):
            if name not in event:
                fail(f"{where}: missing field '{name}'")
        if event["ph"] != "X":
            fail(f"{where}: ph is '{event['ph']}', expected complete "
                 "event 'X'")
        for name in ("ts", "dur"):
            if not isinstance(event[name], (int, float)) \
                    or isinstance(event[name], bool):
                fail(f"{where}: '{name}' must be numeric")
            if event[name] < 0:
                fail(f"{where}: '{name}' must be non-negative")
    print(f"validate_telemetry: OK: {path}: {len(events)} trace events")


# kind -> required payload fields (past seq/kind). Matches the writer in
# src/obs/events.cc.
EVENT_KINDS = {
    "experiment_begin": {"repetitions": int, "algorithms": int},
    "rep_begin": {"rep": int, "offline_cost": (int, float)},
    "run_begin": {"algorithm": str, "clouds": int, "users": int,
                  "slots": int},
    "workers": {"scope": str, "work": int, "min_work": int,
                "eligible": bool},
    "slot": {"slot": int, "cost_operation": (int, float),
             "cost_service_quality": (int, float),
             "cost_reconfiguration": (int, float),
             "cost_migration": (int, float)},
    "solve": {"slot": int, "newton_iterations": int, "mu_steps": int,
              "warm_started": bool, "warm_fallback": bool,
              "active_set": bool, "active_fallback": bool},
    "run_end": {"algorithm": str, "slots": int, "newton_iterations": int,
                "warm_fallback_slots": int, "active_fallback_slots": int,
                "total_cost": (int, float)},
    "result": {"algorithm": str, "rep": int, "cost": (int, float),
               "ratio": (int, float)},
    "rep_end": {"rep": int},
    "experiment_end": {"simulations": int},
}


def validate_events(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"{path}: {err}")
    if not lines:
        fail(f"{path}: empty events file (expected a header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as err:
        fail(f"{path}: header: {err}")
    for name in ("schema", "events", "dropped"):
        if name not in header:
            fail(f"{path}: header: missing field '{name}'")
    if header["schema"] != EVENTS_SCHEMA:
        fail(f"{path}: header schema is '{header['schema']}', expected "
             f"'{EVENTS_SCHEMA}'")
    if header["events"] != len(lines) - 1:
        fail(f"{path}: header claims {header['events']} events, file has "
             f"{len(lines) - 1} body lines")
    # Slot/solve events must be monotone within each run scope — this is
    # the driving-thread, ascending-slot-order contract.
    last_slot = {"slot": -1, "solve": -1}
    for index, line in enumerate(lines[1:]):
        where = f"{path}: line {index + 2}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            fail(f"{where}: {err}")
        if event.get("seq") != index:
            fail(f"{where}: seq {event.get('seq')!r} != position {index}")
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            fail(f"{where}: unknown event kind {kind!r}")
        check_fields(event, EVENT_KINDS[kind], where)
        if kind == "run_begin":
            last_slot = {"slot": -1, "solve": -1}
        elif kind in ("slot", "solve"):
            if event["slot"] <= last_slot[kind]:
                fail(f"{where}: {kind} event slot {event['slot']} not "
                     f"increasing (previous {last_slot[kind]})")
            last_slot[kind] = event["slot"]
    print(f"validate_telemetry: OK: {path}: {len(lines) - 1} events, "
          f"{header['dropped']} dropped")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", required=True,
                        help="eca.telemetry.v3 JSON file")
    parser.add_argument("--trace", default=None,
                        help="optional Chrome-trace JSON file")
    parser.add_argument("--events", default=None,
                        help="optional eca.events.v1 JSONL stream")
    args = parser.parse_args()
    validate_telemetry(args.telemetry)
    if args.trace:
        validate_trace(args.trace)
    if args.events:
        validate_events(args.events)


if __name__ == "__main__":
    main()
