#!/usr/bin/env python3
"""Schema checker for the observability artifacts.

    scripts/validate_telemetry.py --telemetry run.telemetry.json \
                                  [--trace run.trace.json]

Validates:
  * the telemetry file against schema eca.telemetry.v2 — required fields,
    types, and the accounting invariant that the per-slot weighted cost
    splits sum to total_cost within 1e-9 relative (float reassociation is
    the only permitted difference);
  * the optional Chrome-trace file: a strict JSON array, one event per
    line, each a complete-event record ("ph":"X") with numeric ts/dur —
    i.e. loadable by chrome://tracing and Perfetto.

Exits 0 when valid, 1 with a message on the first violation.
"""
import argparse
import json
import sys

SCHEMA = "eca.telemetry.v2"
REL_TOL = 1e-9

RUN_FIELDS = {
    "schema": str,
    "algorithm": str,
    "num_clouds": int,
    "num_users": int,
    "num_slots": int,
    "total_cost": (int, float),
    "wall_seconds": (int, float),
    "total_newton_iterations": int,
    "warm_started_slots": int,
    "warm_fallback_slots": int,
    "active_set_slots": int,
    "active_fallback_slots": int,
    "slots": list,
}

SLOT_FIELDS = {
    "slot": int,
    "cost_operation": (int, float),
    "cost_service_quality": (int, float),
    "cost_reconfiguration": (int, float),
    "cost_migration": (int, float),
}

SOLVE_FIELDS = {
    "newton_iterations": int,
    "mu_steps": int,
    "kkt_comp_avg": (int, float),
    "kkt_dual_residual": (int, float),
    "warm_started": bool,
    "warm_fallback": bool,
    "active_set": bool,
    "active_fallback": bool,
    "active_rounds": int,
    "active_nnz": int,
    "active_support_max": int,
    "certify_residual": (int, float),
    "solve_seconds": (int, float),
    "assembly_seconds": (int, float),
    "factor_seconds": (int, float),
}


def fail(message):
    print(f"validate_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for name, kind in fields.items():
        if name not in obj:
            fail(f"{where}: missing field '{name}'")
        value = obj[name]
        # bool is an int subclass; require real ints where ints are expected.
        if kind is int and isinstance(value, bool):
            fail(f"{where}: field '{name}' must be an integer, got bool")
        if not isinstance(value, kind):
            fail(f"{where}: field '{name}' has type {type(value).__name__}")


def validate_telemetry(path):
    try:
        with open(path, encoding="utf-8") as handle:
            run = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    check_fields(run, RUN_FIELDS, path)
    if run["schema"] != SCHEMA:
        fail(f"{path}: schema is '{run['schema']}', expected '{SCHEMA}'")
    if len(run["slots"]) != run["num_slots"]:
        fail(f"{path}: {len(run['slots'])} slot records for "
             f"num_slots={run['num_slots']}")
    slot_sum = 0.0
    for index, slot in enumerate(run["slots"]):
        where = f"{path}: slots[{index}]"
        check_fields(slot, SLOT_FIELDS, where)
        if slot["slot"] != index:
            fail(f"{where}: slot index {slot['slot']} != position {index}")
        slot_sum += (slot["cost_operation"] + slot["cost_service_quality"]
                     + slot["cost_reconfiguration"] + slot["cost_migration"])
        if "solve" in slot:
            check_fields(slot["solve"], SOLVE_FIELDS, f"{where}.solve")
    total = run["total_cost"]
    tolerance = REL_TOL * max(1.0, abs(total))
    if abs(slot_sum - total) > tolerance:
        fail(f"{path}: slot cost sum {slot_sum!r} differs from total_cost "
             f"{total!r} by {abs(slot_sum - total):.3e} (> {tolerance:.3e})")
    solved = sum(1 for slot in run["slots"] if "solve" in slot)
    print(f"validate_telemetry: OK: {path}: {run['algorithm']}, "
          f"{run['num_slots']} slots ({solved} with solver stats), "
          f"slot-sum drift {abs(slot_sum - total):.3e}")


def validate_trace(path):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
            events = json.loads(text)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if not isinstance(events, list):
        fail(f"{path}: top level must be a JSON array of trace events")
    # One event per line: every non-bracket line holds exactly one record.
    body_lines = [line for line in text.splitlines()
                  if line.strip() not in ("[", "]", "")]
    if len(body_lines) != len(events):
        fail(f"{path}: {len(events)} events across {len(body_lines)} lines; "
             "expected one event per line")
    for index, event in enumerate(events):
        where = f"{path}: event[{index}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        for name in ("name", "ph", "pid", "tid", "ts", "dur"):
            if name not in event:
                fail(f"{where}: missing field '{name}'")
        if event["ph"] != "X":
            fail(f"{where}: ph is '{event['ph']}', expected complete "
                 "event 'X'")
        for name in ("ts", "dur"):
            if not isinstance(event[name], (int, float)) \
                    or isinstance(event[name], bool):
                fail(f"{where}: '{name}' must be numeric")
            if event[name] < 0:
                fail(f"{where}: '{name}' must be non-negative")
    print(f"validate_telemetry: OK: {path}: {len(events)} trace events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", required=True,
                        help="eca.telemetry.v2 JSON file")
    parser.add_argument("--trace", default=None,
                        help="optional Chrome-trace JSON file")
    args = parser.parse_args()
    validate_telemetry(args.telemetry)
    if args.trace:
        validate_trace(args.trace)


if __name__ == "__main__":
    main()
