#!/usr/bin/env python3
"""Markdown run report from the observability artifacts.

    scripts/report_run.py --telemetry run.telemetry.json \
                          [--events run.events.jsonl] \
                          [--out report.md] [--top 5]

Joins an eca.telemetry.v3 file (one simulator run) with an optional
eca.events.v1 stream (the surrounding experiment lifecycle) into a
human-readable report:

  * run summary — dimensions, cost split, empirical competitive ratio when
    an offline reference is attached, trace/event drop counters;
  * ratio trajectory — cumulative online/offline ratio over time, rendered
    as a fixed-width bar chart (the paper's central measurement, now
    visible per slot instead of only as an endpoint);
  * worst-K regret slots — the slots that lose the ratio, decomposed into
    the paper's Cost_op/Cost_sq/Cost_rc/Cost_mg terms (mobility bursts
    show up as migration regret, price spikes as operation regret);
  * solver health — Newton iteration stats and every warm-start or
    active-set fallback slot (regressions of the PR-3/5 optimizations);
  * experiment events — per-repetition results and drop accounting from
    the event stream, when provided.

Writes markdown to --out (default: stdout). Exits 1 on malformed input.
"""
import argparse
import json
import sys

BAR_WIDTH = 40


def fail(message):
    print(f"report_run: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_telemetry(path):
    try:
        with open(path, encoding="utf-8") as handle:
            run = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if run.get("schema") != "eca.telemetry.v3":
        fail(f"{path}: schema is {run.get('schema')!r}, expected "
             "'eca.telemetry.v3'")
    return run


def load_events(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"{path}: {err}")
    if not lines:
        fail(f"{path}: empty events file")
    try:
        header = json.loads(lines[0])
        events = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as err:
        fail(f"{path}: {err}")
    if header.get("schema") != "eca.events.v1":
        fail(f"{path}: header schema is {header.get('schema')!r}, expected "
             "'eca.events.v1'")
    return header, events


def slot_cost(slot):
    return (slot["cost_operation"] + slot["cost_service_quality"]
            + slot["cost_reconfiguration"] + slot["cost_migration"])


def regret_total(slot):
    return (slot["regret_operation"] + slot["regret_service_quality"]
            + slot["regret_reconfiguration"] + slot["regret_migration"])


def bar(value, lo, hi):
    if hi <= lo:
        return ""
    filled = round(BAR_WIDTH * (value - lo) / (hi - lo))
    return "#" * max(0, min(BAR_WIDTH, filled))


def summary_section(out, run):
    out.append(f"# Run report: {run['algorithm']}")
    out.append("")
    out.append(f"- instance: {run['num_clouds']} clouds, "
               f"{run['num_users']} users, {run['num_slots']} slots")
    out.append(f"- total cost: {run['total_cost']:.4f} "
               f"(wall {run['wall_seconds']:.2f}s)")
    if run["has_reference"]:
        out.append(f"- offline-opt cost: {run['offline_total_cost']:.4f} "
                   f"-> empirical competitive ratio **{run['ratio']:.4f}**")
    else:
        out.append("- no offline reference attached (ratio attribution "
                   "unavailable; produce telemetry via the experiment "
                   "runner / ECA_TELEMETRY_DIR to get it)")
    total = run["total_cost"]
    if total > 0 and run["slots"]:
        op = sum(s["cost_operation"] for s in run["slots"])
        sq = sum(s["cost_service_quality"] for s in run["slots"])
        rc = sum(s["cost_reconfiguration"] for s in run["slots"])
        mg = sum(s["cost_migration"] for s in run["slots"])
        out.append(f"- cost split: operation {100 * op / total:.1f}%, "
                   f"service quality {100 * sq / total:.1f}%, "
                   f"reconfiguration {100 * rc / total:.1f}%, "
                   f"migration {100 * mg / total:.1f}%")
    drops = []
    if run["trace_dropped"]:
        drops.append(f"trace dropped {run['trace_dropped']} "
                     "(raise ECA_TRACE_CAP)")
    if run["events_dropped"]:
        drops.append(f"events dropped {run['events_dropped']} "
                     "(raise ECA_EVENTS_CAP)")
    out.append(f"- observability: {'; '.join(drops) if drops else 'no drops'}")
    out.append("")


def ratio_section(out, run, max_rows):
    slots = run["slots"]
    if not run["has_reference"] or not slots:
        return
    out.append("## Ratio trajectory")
    out.append("")
    out.append("Cumulative online/offline cost through each slot "
               "(1.0 = offline parity).")
    out.append("")
    ratios = [s["ratio_cum"] for s in slots]
    lo, hi = min(1.0, min(ratios)), max(ratios)
    # Downsample long runs to ~max_rows evenly spaced slots (always keep
    # the last slot: it is the run's final ratio).
    stride = max(1, len(slots) // max_rows)
    shown = sorted({*range(0, len(slots), stride), len(slots) - 1})
    out.append("| slot | ratio_cum | |")
    out.append("|-----:|----------:|:-----|")
    for index in shown:
        ratio = ratios[index]
        out.append(f"| {slots[index]['slot']} | {ratio:.4f} | "
                   f"`{bar(ratio, lo, hi)}` |")
    out.append("")


def regret_section(out, run, top):
    slots = run["slots"]
    if not run["has_reference"] or not slots:
        return
    worst = sorted(slots, key=regret_total, reverse=True)[:top]
    worst = [s for s in worst if regret_total(s) > 0]
    out.append(f"## Worst {len(worst)} regret slots")
    out.append("")
    if not worst:
        out.append("No slot exceeded the offline reference's cost.")
        out.append("")
        return
    out.append("Slots losing the most against the offline trajectory, "
               "split into the paper's cost terms.")
    out.append("")
    out.append("| slot | regret | operation | service quality | "
               "reconfiguration | migration |")
    out.append("|-----:|-------:|----------:|----------------:|"
               "----------------:|----------:|")
    for slot in worst:
        out.append(f"| {slot['slot']} | {regret_total(slot):.4f} | "
                   f"{slot['regret_operation']:.4f} | "
                   f"{slot['regret_service_quality']:.4f} | "
                   f"{slot['regret_reconfiguration']:.4f} | "
                   f"{slot['regret_migration']:.4f} |")
    out.append("")


def solver_section(out, run):
    solves = [s for s in run["slots"] if "solve" in s]
    out.append("## Solver health")
    out.append("")
    if not solves:
        out.append("No solver telemetry (baseline algorithm or "
                   "metrics disabled).")
        out.append("")
        return
    iters = [s["solve"]["newton_iterations"] for s in solves]
    out.append(f"- {run['total_newton_iterations']} Newton iterations over "
               f"{len(solves)} solves (per-slot min {min(iters)}, "
               f"max {max(iters)})")
    out.append(f"- warm-started {run['warm_started_slots']}, "
               f"active-set {run['active_set_slots']} of "
               f"{len(solves)} slots")
    fallbacks = [s for s in solves
                 if s["solve"]["warm_fallback"]
                 or s["solve"]["active_fallback"]]
    if fallbacks:
        out.append(f"- **{len(fallbacks)} fallback slot(s)** — the "
                   "optimized paths rejected their shortcut here:")
        for slot in fallbacks:
            kinds = [k for k in ("warm_fallback", "active_fallback")
                     if slot["solve"][k]]
            out.append(f"  - slot {slot['slot']}: {', '.join(kinds)} "
                       f"({slot['solve']['newton_iterations']} iterations)")
    else:
        out.append("- no warm-start or active-set fallbacks")
    out.append("")


def events_section(out, header, events):
    out.append("## Experiment events")
    out.append("")
    out.append(f"- {len(events)} events recorded, "
               f"{header['dropped']} dropped")
    kinds = {}
    for event in events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    out.append("- by kind: "
               + ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items())))
    results = [e for e in events if e["kind"] == "result"]
    if results:
        out.append("")
        out.append("| rep | algorithm | cost | ratio |")
        out.append("|----:|:----------|-----:|------:|")
        for event in results:
            out.append(f"| {event['rep']} | {event['algorithm']} | "
                       f"{event['cost']:.4f} | {event['ratio']:.4f} |")
    out.append("")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", required=True,
                        help="eca.telemetry.v3 JSON file")
    parser.add_argument("--events", default=None,
                        help="optional eca.events.v1 JSONL stream")
    parser.add_argument("--out", default=None,
                        help="output markdown path (default: stdout)")
    parser.add_argument("--top", type=int, default=5,
                        help="worst regret slots to list (default 5)")
    args = parser.parse_args()

    run = load_telemetry(args.telemetry)
    out = []
    summary_section(out, run)
    ratio_section(out, run, max_rows=20)
    regret_section(out, run, args.top)
    solver_section(out, run)
    if args.events:
        header, events = load_events(args.events)
        events_section(out, header, events)

    text = "\n".join(out) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report_run: wrote {args.out} ({len(text.splitlines())} "
              "lines)")
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
