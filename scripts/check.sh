#!/usr/bin/env bash
# Full local gate: tier-1 build + tests, ThreadSanitizer smoke of the
# parallel code paths, the property-harness smoke sweep, and a quick-mode
# bench sweep that exercises the BENCH_solvers.json emitter end to end.
#
#   scripts/check.sh                 # everything
#   scripts/check.sh fuzz [N] [SEC]  # extended property-harness soak only:
#                                    # N seeded scenarios (default 1000)
#                                    # time-boxed to SEC seconds (default
#                                    # 300), gated through perf_guard.py
#   ECA_CHECK_SKIP_TSAN=1 scripts/check.sh   # skip the TSan build (slow)
#   ECA_PROP_SEED=7 scripts/check.sh fuzz    # soak a different seed range
#
# Build directories: build/ (tier-1, Release) and build-tsan/ (TSan smoke).
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)

# Extended-seed-range fuzz mode: build only what the harness needs, run the
# soak, and gate the summary like a perf result. Failures are shrunk to
# replay files under build/prop-fuzz/.
if [[ "${1:-}" == "fuzz" ]]; then
  scenarios="${2:-1000}"
  budget="${3:-300}"
  echo "== prop fuzz: $scenarios scenarios, ${budget}s budget =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs" --target prop_fuzz
  fuzz_dir=build/prop-fuzz
  rm -rf "$fuzz_dir" && mkdir -p "$fuzz_dir"
  ./build/examples/prop_fuzz --scenarios "$scenarios" \
    --time-budget "$budget" --replay-dir "$fuzz_dir" \
    --summary "$fuzz_dir/prop_summary.json" || true
  python3 scripts/perf_guard.py "$fuzz_dir/prop_summary.json"
  echo "== check.sh fuzz: gate passed =="
  exit 0
fi

echo "== tier-1: configure + build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${ECA_CHECK_SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan-smoke: build with -DECA_SANITIZE=thread =="
  cmake -B build-tsan -S . -DECA_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" \
    --target test_runner_determinism test_slot_parallel test_obs_parallel \
             test_pdhg_parallel test_baseline_parallel \
             test_events_determinism
  echo "== tsan-smoke: ctest -L tsan-smoke =="
  ctest --test-dir build-tsan -L tsan-smoke --output-on-failure
else
  echo "== tsan-smoke: skipped (ECA_CHECK_SKIP_TSAN=1) =="
fi

echo "== prop-smoke: differential harness sweep (ctest -L prop-smoke) =="
ctest --test-dir build -L prop-smoke --output-on-failure

echo "== prop-smoke: harness summary through the perf guard =="
prop_dir=build/prop-check
rm -rf "$prop_dir" && mkdir -p "$prop_dir"
./build/examples/prop_fuzz --scenarios 50 --replay-dir "$prop_dir" \
  --summary "$prop_dir/prop_summary.json" || true
python3 scripts/perf_guard.py "$prop_dir/prop_summary.json"

echo "== scripts: python unit tests =="
if command -v pytest >/dev/null 2>&1; then
  pytest -q tests/scripts
else
  python3 -m unittest discover -s tests/scripts -p 'test_*.py' -v
fi

echo "== obs: instrumented trajectory + schema validation =="
obs_dir=build/obs-check
rm -rf "$obs_dir" && mkdir -p "$obs_dir"
(cd "$obs_dir" && ../examples/run_instance --demo > run.log)
ECA_METRICS=on ECA_TRACE="$obs_dir/run.trace.json" \
  ECA_TELEMETRY="$obs_dir/run.telemetry.json" \
  ECA_EVENTS="$obs_dir/run.events.jsonl" \
  ECA_METRICS_OUT="$obs_dir/run.metrics.prom" \
  ./build/examples/run_instance "$obs_dir/demo.instance" online-approx
python3 scripts/validate_telemetry.py \
  --telemetry "$obs_dir/run.telemetry.json" \
  --trace "$obs_dir/run.trace.json" \
  --events "$obs_dir/run.events.jsonl"

echo "== obs: markdown run report =="
python3 scripts/report_run.py \
  --telemetry "$obs_dir/run.telemetry.json" \
  --events "$obs_dir/run.events.jsonl" \
  --out "$obs_dir/report.md"

echo "== bench: quick-mode sweep =="
# Sweep through J=1024 so the perf guard's active-vs-dense gate has a
# point to check (the sweep itself is cheap; the committed BENCH file is
# regenerated separately at full scale).
ECA_SWEEP_MAX_USERS=1024 ECA_SWEEP_SLOTS=2 ECA_USERS=15 ECA_SLOTS=8 \
  ECA_REPS=1 ECA_BENCH_JSON=build/BENCH_solvers.quick.json \
  ./build/bench/bench_solvers

echo "== bench: offline horizon-LP sweep (quick mode) =="
# Two small points under a tight iteration budget: exercises the
# BENCH_offline.json emitter, the serial-vs-N-thread legs and the bitwise
# cross-check end to end (the committed BENCH file is regenerated
# separately at full scale).
ECA_OFFLINE_MAX_USERS=32 ECA_OFFLINE_SLOTS=8 ECA_OFFLINE_MAX_ITERS=2000 \
  ECA_BENCH_OFFLINE_JSON=build/BENCH_offline.quick.json \
  ./build/bench/bench_offline

echo "== bench: baseline-evaluation sweep (quick mode) =="
# Small points only: exercises the three-leg emitter (rebuild+cold vs
# skeleton+warm vs slot fan-out) and the bitwise cross-check end to end
# (the committed BENCH file is regenerated separately at full scale).
# ECA_METRICS=on records per-leg ipm.iterations deltas so perf_guard's
# deterministic warm-iteration gate exercises even on noisy hosts.
ECA_METRICS=on ECA_BASELINE_MAX_USERS=32 ECA_BASELINE_SLOTS=8 \
  ECA_BENCH_BASELINES_JSON=build/BENCH_baselines.quick.json \
  ./build/bench/bench_baselines

echo "== bench: user-class aggregation sweep (quick mode) =="
# Small sweep with a miniature long leg: exercises the aggregated vs
# per-user legs, the streaming-parity cross-check and the long-run RSS
# accounting end to end (the committed BENCH file is regenerated
# separately at full scale, where the >= 2x speedup and >= 10x collapse
# gates actually engage).
ECA_SCALE_MIN_USERS=200 ECA_SCALE_MAX_USERS=2000 ECA_SCALE_SLOTS=4 \
  ECA_SCALE_PER_USER_MAX=2000 ECA_SCALE_PARITY_MAX=400 \
  ECA_SCALE_LONG_USERS=20000 ECA_SCALE_LONG_SLOTS=10 \
  ECA_BENCH_SCALE_JSON=build/BENCH_scale.quick.json \
  ./build/bench/bench_scale

echo "== perf guard: active-set + adaptive-granularity + LP-thread + baseline + aggregation gates =="
python3 scripts/perf_guard.py build/BENCH_solvers.quick.json \
  build/BENCH_offline.quick.json build/BENCH_baselines.quick.json \
  build/BENCH_scale.quick.json

echo "== check.sh: all gates passed =="
